//! Fault-injection tests: a real `Server` on loopback with a
//! deterministic [`FaultPlan`], proving the containment boundaries —
//! one component fails, one session degrades or errors, everything
//! else (including the final SHUTDOWN exit) is unaffected.

use csst_analyses::registry::{self, IndexKind};
use csst_serve::proto::{
    read_frame, write_frame, Hello, WireFormat, MAX_FRAME, T_ERROR, T_EVENTS, T_HELLO, T_OK,
};
use csst_serve::{Client, FaultPlan, Server, ServerCfg};
use std::io::Write;
use std::net::TcpStream;

/// Binds a server with `cfg` on an OS-chosen port and runs it on a
/// background thread.
fn spawn_server_with(cfg: ServerCfg) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind_with("tcp:127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn batch_hb_report() -> (u8, String, Vec<String>) {
    let entry = registry::find("hb").unwrap();
    let out = entry
        .run(&entry.demo_trace(), IndexKind::Csst, None)
        .unwrap();
    (out.exit_code, out.summary, out.lines)
}

fn run_hb_session(addr: &str) -> csst_serve::Report {
    let hello = Hello {
        analysis: "hb".into(),
        index: "csst".into(),
        format: WireFormat::Binary,
        shards: 1,
        window: None,
    };
    let mut client = Client::open(addr, &hello).expect("open hb session");
    client
        .send_trace(&registry::find("hb").unwrap().demo_trace())
        .expect("send");
    client.finish().expect("hb report")
}

/// The tentpole acceptance scenario: with fault injection enabled, a
/// shard-worker panic mid-stream degrades that session to the
/// sequential engine, whose report is byte-identical to the batch CLI —
/// and a concurrent healthy session is untouched. The server still
/// exits 0 on SHUTDOWN.
#[test]
fn worker_panic_degrades_one_session_and_reports_match_batch() {
    let faults = FaultPlan::parse("panic-worker=0@20").unwrap();
    let cfg = ServerCfg {
        faults: faults.clone(),
        ..Default::default()
    };
    let (addr, handle) = spawn_server_with(cfg);

    // Two concurrent hb sessions; the one-shot trigger fires in
    // whichever reaches the worker's 20th message first, degrading it.
    // Degraded or not, both reports must equal the batch run — that is
    // the whole point of the fallback.
    let a = {
        let addr = addr.clone();
        std::thread::spawn(move || run_hb_session(&addr))
    };
    let b = {
        let addr = addr.clone();
        std::thread::spawn(move || run_hb_session(&addr))
    };
    let (code, summary, lines) = batch_hb_report();
    for report in [a.join().unwrap(), b.join().unwrap()] {
        assert_eq!(report.exit_code, code);
        assert_eq!(report.summary, summary);
        assert_eq!(report.lines, lines);
    }
    assert_eq!(faults.fired(), 1, "the injected panic must have hit");

    Client::shutdown_server(&addr).expect("shutdown");
    handle.join().unwrap().expect("server exits cleanly");
}

/// Satellite: oversized, truncated and unknown-type frames each get a
/// structured `protocol:` ERROR and a clean close — while a healthy
/// session opened *before* the attacks completes unaffected afterwards.
#[test]
fn malformed_frames_get_structured_errors_and_spare_other_sessions() {
    let (addr, handle) = spawn_server_with(ServerCfg::default());
    let tcp = addr.strip_prefix("tcp:").unwrap();

    // The healthy session: opened first, finished last.
    let hello = Hello::default();
    let mut healthy = Client::open(&addr, &hello).expect("open healthy session");
    healthy
        .send_trace(&registry::find("hb").unwrap().demo_trace())
        .expect("send");

    // Oversized frame: a length prefix above MAX_FRAME.
    let mut stream = TcpStream::connect(tcp).unwrap();
    write_frame(&mut stream, T_HELLO, &Hello::default().encode()).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().unwrap().0, T_OK);
    stream
        .write_all(&((MAX_FRAME as u32) + 10).to_le_bytes())
        .unwrap();
    let (tag, payload) = read_frame(&mut stream).unwrap().expect("error reply");
    assert_eq!(tag, T_ERROR);
    let msg = String::from_utf8(payload).unwrap();
    assert!(msg.starts_with("protocol:"), "{msg}");
    assert!(msg.contains("exceeds"), "{msg}");
    assert_eq!(read_frame(&mut stream).unwrap(), None, "clean close");

    // Unknown frame tag.
    let mut stream = TcpStream::connect(tcp).unwrap();
    write_frame(&mut stream, T_HELLO, &Hello::default().encode()).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().unwrap().0, T_OK);
    write_frame(&mut stream, 0x77, b"").unwrap();
    let (tag, payload) = read_frame(&mut stream).unwrap().expect("error reply");
    assert_eq!(tag, T_ERROR);
    let msg = String::from_utf8(payload).unwrap();
    assert!(msg.starts_with("protocol: unexpected frame tag"), "{msg}");

    // Truncated frame: half a length prefix, then write-side close.
    let mut stream = TcpStream::connect(tcp).unwrap();
    write_frame(&mut stream, T_HELLO, &Hello::default().encode()).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().unwrap().0, T_OK);
    stream.write_all(&[0x44, 0x00]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let (tag, payload) = read_frame(&mut stream).unwrap().expect("error reply");
    assert_eq!(tag, T_ERROR);
    let msg = String::from_utf8(payload).unwrap();
    assert!(msg.starts_with("protocol:"), "{msg}");

    // The healthy session was unaffected by all three.
    let report = healthy.finish().expect("healthy report");
    let (code, summary, lines) = batch_hb_report();
    assert_eq!(
        (report.exit_code, report.summary, report.lines),
        (code, summary, lines)
    );

    Client::shutdown_server(&addr).expect("shutdown");
    handle.join().unwrap().expect("server exits cleanly");
}

/// An injected corrupt-events fault must surface as a structured
/// `decode:` ERROR (never a panic), end only that session, and leave
/// the server serving.
#[test]
fn injected_frame_corruption_is_a_decode_error() {
    let cfg = ServerCfg {
        faults: FaultPlan::parse("corrupt-events=1").unwrap(),
        ..Default::default()
    };
    let (addr, handle) = spawn_server_with(cfg);
    let tcp = addr.strip_prefix("tcp:").unwrap();

    let mut stream = TcpStream::connect(tcp).unwrap();
    write_frame(&mut stream, T_HELLO, &Hello::default().encode()).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().unwrap().0, T_OK);
    let mut payload = Vec::new();
    let trace = registry::find("hb").unwrap().demo_trace();
    for (id, ev) in trace.iter_order() {
        csst_trace::binary::encode_event(id.thread, &ev.kind, &mut payload);
    }
    write_frame(&mut stream, T_EVENTS, &payload).unwrap();
    let (tag, payload) = read_frame(&mut stream).unwrap().expect("error reply");
    assert_eq!(tag, T_ERROR);
    let msg = String::from_utf8(payload).unwrap();
    assert!(msg.starts_with("decode:"), "{msg}");

    // The server is still healthy.
    let report = run_hb_session(&addr);
    let (code, ..) = batch_hb_report();
    assert_eq!(report.exit_code, code);

    Client::shutdown_server(&addr).expect("shutdown");
    handle.join().unwrap().expect("server exits cleanly");
}

/// Client-side reconnect: `open_with_retry` rides out a server that is
/// still starting up.
#[test]
fn open_with_retry_waits_for_a_late_server() {
    let dir = std::env::temp_dir().join(format!("csst-retry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("late.sock");
    let addr = format!("unix:{}", sock.display());

    // The server binds only after a delay; the first attempts fail
    // with NotFound/ConnectionRefused and must be retried.
    let server_addr = addr.clone();
    let server = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(300));
        let server = Server::bind(&server_addr).expect("late bind");
        server.run()
    });

    let mut client = Client::open_with_retry(&addr, &Hello::default(), 10)
        .expect("retry until the server is up");
    client
        .send_trace(&registry::find("hb").unwrap().demo_trace())
        .expect("send");
    assert!(client.finish().is_ok());

    Client::shutdown_server(&addr).expect("shutdown");
    server.join().unwrap().expect("server exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
