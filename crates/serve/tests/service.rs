//! End-to-end service tests: a real `Server` on loopback, real client
//! sessions over TCP, reports cross-checked against the batch
//! registry.

use csst_analyses::registry::{self, IndexKind};
use csst_serve::proto::{read_frame, write_frame, WireFormat, T_ERROR, T_EVENTS, T_HELLO, T_OK};
use csst_serve::{Client, Hello, Server};
use std::io::Write;
use std::net::TcpStream;

/// Binds a server on an OS-chosen port and runs it on a background
/// thread; returns the connectable address and the join handle.
fn spawn_server() -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("tcp:127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn batch_report(analysis: &str, index: &str, window: Option<usize>) -> (u8, String, Vec<String>) {
    let entry = registry::find(analysis).unwrap();
    let out = entry
        .run(
            &entry.demo_trace(),
            IndexKind::parse(index).unwrap(),
            window,
        )
        .unwrap();
    (out.exit_code, out.summary, out.lines)
}

#[test]
fn concurrent_sessions_match_batch_and_shutdown_is_clean() {
    let (addr, handle) = spawn_server();

    // Two concurrent sessions with different analyses, formats and
    // shard counts, plus online queries on the hb session.
    let addr_hb = addr.clone();
    let hb_session = std::thread::spawn(move || {
        let hello = Hello {
            analysis: "hb".into(),
            index: "csst".into(),
            format: WireFormat::Binary,
            shards: 2,
            window: None,
        };
        let mut client = Client::open(&addr_hb, &hello).expect("open hb session");
        let trace = registry::find("hb").unwrap().demo_trace();
        client.send_trace(&trace).expect("send");
        let events = client.query("events").expect("events query");
        assert_eq!(events, trace.total_events().to_string());
        let races = client.query("races").expect("races query");
        assert!(races.parse::<usize>().unwrap() > 0, "demo has hb races");
        client.finish().expect("hb report")
    });
    let addr_race = addr.clone();
    let race_session = std::thread::spawn(move || {
        let hello = Hello {
            analysis: "race".into(),
            index: "csst".into(),
            format: WireFormat::Text,
            shards: 3,
            window: None,
        };
        let mut client = Client::open(&addr_race, &hello).expect("open race session");
        client
            .send_trace(&registry::find("race").unwrap().demo_trace())
            .expect("send");
        client.finish().expect("race report")
    });

    let hb_report = hb_session.join().unwrap();
    let (code, summary, lines) = batch_report("hb", "csst", None);
    assert_eq!(hb_report.exit_code, code);
    assert_eq!(hb_report.summary, summary);
    assert_eq!(hb_report.lines, lines);

    let race_report = race_session.join().unwrap();
    let (code, summary, lines) = batch_report("race", "csst", None);
    assert_eq!(race_report.exit_code, code);
    assert_eq!(race_report.summary, summary);
    assert_eq!(race_report.lines, lines);

    Client::shutdown_server(&addr).expect("shutdown");
    handle.join().unwrap().expect("server exits cleanly");
}

#[test]
fn batch_fallback_windowed_and_query_errors() {
    let (addr, handle) = spawn_server();

    // A non-sharded analysis runs through the batch fallback engine,
    // windowed, and still matches the local registry run.
    let hello = Hello {
        analysis: "deadlock".into(),
        index: "csst".into(),
        format: WireFormat::Rapid,
        shards: 1,
        window: Some(128),
    };
    let mut client = Client::open(&addr, &hello).expect("open session");
    let demo = registry::find("deadlock").unwrap().demo_trace();
    client.send_trace(&demo).expect("send");
    // Online queries are limited in batch mode; unknown ones error
    // without killing the session.
    assert!(client.query("races").is_err());
    let report = client.finish().expect("report");
    // The rapid format interns thread/lock ids by order of appearance,
    // so the server analyzed the *relabeled* trace; compare against
    // the batch run over the same round-trip.
    let relabeled = csst_trace::rapid::parse(&csst_trace::rapid::write(&demo)).unwrap();
    let out = registry::find("deadlock")
        .unwrap()
        .run(&relabeled, IndexKind::Csst, Some(128))
        .unwrap();
    assert_eq!(
        (report.exit_code, report.summary, report.lines),
        (out.exit_code, out.summary, out.lines)
    );

    Client::shutdown_server(&addr).expect("shutdown");
    handle.join().unwrap().expect("server exits cleanly");
}

#[test]
fn bad_hello_and_malformed_events_are_session_errors() {
    let (addr, handle) = spawn_server();
    let tcp = addr.strip_prefix("tcp:").unwrap();

    // Unknown analysis: ERROR at HELLO.
    let hello = Hello {
        analysis: "frobnicate".into(),
        ..Default::default()
    };
    let err = match Client::open(&addr, &hello) {
        Err(e) => e,
        Ok(_) => panic!("unknown analysis must fail"),
    };
    assert!(err.to_string().contains("unknown analysis"), "{err}");

    // hb rejects windowing, like the batch registry.
    let hello = Hello {
        analysis: "hb".into(),
        window: Some(10),
        ..Default::default()
    };
    assert!(Client::open(&addr, &hello).is_err());

    // Malformed binary EVENTS payload: ERROR, session ends, server
    // lives on.
    let mut stream = TcpStream::connect(tcp).unwrap();
    write_frame(&mut stream, T_HELLO, Hello::default().encode().as_slice()).unwrap();
    assert_eq!(read_frame(&mut stream).unwrap().unwrap().0, T_OK);
    write_frame(&mut stream, T_EVENTS, &[0xFF, 0xFF, 0xFF]).unwrap();
    let (tag, payload) = read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(tag, T_ERROR);
    assert!(!payload.is_empty());

    // A garbage (non-framed) byte stream must not take the server
    // down either.
    let mut stream = TcpStream::connect(tcp).unwrap();
    stream.write_all(b"\x03\x00\x00").unwrap(); // truncated prefix
    drop(stream);

    // The server still serves a full session afterwards.
    let mut client = Client::open(&addr, &Hello::default()).expect("server still alive");
    client
        .send_trace(&registry::find("hb").unwrap().demo_trace())
        .expect("send");
    assert!(client.finish().is_ok());

    Client::shutdown_server(&addr).expect("shutdown");
    handle.join().unwrap().expect("server exits cleanly");
}
