//! Length-prefixed binary trace format.
//!
//! The third interchange format next to [`text`](crate::text) and
//! [`rapid`](crate::rapid), designed for the `csst-serve` wire
//! protocol: every event is one self-delimiting *record*
//!
//! ```text
//! [body_len: u16 LE] [kind: u8] [thread: u32 LE] [fields…]
//! ```
//!
//! with fixed-width little-endian fields per [`EventKind`] variant, so
//! a receiver can split a byte stream into events without interpreting
//! the payload first. A whole-trace *file* form adds a header:
//!
//! ```text
//! [b"CSTB"] [version: u8 = 1] [num_threads: u32 LE] [records…]
//! ```
//!
//! Decoding is total: malformed input — truncated records, unknown
//! kind/order/method tags, length fields that disagree with the kind —
//! answers a [`BinError`] naming the byte offset, never a panic. The
//! round-trip property (`parse(write(t)) == t` over every generator
//! family) and the malformed-input behavior are pinned by the tests
//! below.

use crate::event::{EventKind, MemOrder, Method};
use crate::trace::Trace;
use csst_core::ThreadId;
use std::fmt;

/// Magic bytes of the whole-trace file form.
pub const MAGIC: [u8; 4] = *b"CSTB";
/// Current format version.
pub const VERSION: u8 = 1;
/// Largest legal record body (the `AtomicRmw` record: kind + thread +
/// var + order + two u64 values). Anything larger is corrupt.
pub const MAX_RECORD: usize = 1 + 4 + 4 + 1 + 8 + 8;
/// Largest plausible header thread count. The header field is a
/// pre-sizing hint (records carry their own thread ids and the trace
/// grows on demand), so a corrupt count must be rejected *before* it
/// turns into a multi-gigabyte allocation — found by the corruption
/// property tests.
pub const MAX_THREADS: usize = 1 << 20;

/// A malformed-input diagnosis; `offset` is the byte position of the
/// record (or field) that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinError {
    /// The input ends inside a header or record.
    Truncated {
        /// Byte offset where more input was required.
        offset: usize,
    },
    /// The file form does not start with [`MAGIC`].
    BadMagic,
    /// The file form carries an unsupported version.
    BadVersion(u8),
    /// Unknown [`EventKind`] tag.
    BadKind {
        /// Byte offset of the record.
        offset: usize,
        /// The offending tag byte.
        tag: u8,
    },
    /// A record's length field disagrees with what its kind needs.
    BadLength {
        /// Byte offset of the record.
        offset: usize,
        /// The length field's value.
        len: usize,
    },
    /// Unknown [`MemOrder`] byte.
    BadOrder {
        /// Byte offset of the record.
        offset: usize,
        /// The offending order byte.
        value: u8,
    },
    /// Unknown [`Method`] byte.
    BadMethod {
        /// Byte offset of the record.
        offset: usize,
        /// The offending method byte.
        value: u8,
    },
    /// A thread count or thread id exceeds [`MAX_THREADS`] (corrupt,
    /// and honoring it would allocate unboundedly).
    BadThreadCount {
        /// Byte offset of the header field or record.
        offset: usize,
        /// The implausible count or id.
        value: usize,
    },
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BinError::Truncated { offset } => {
                write!(f, "truncated input: record at byte {offset} is incomplete")
            }
            BinError::BadMagic => write!(f, "not a binary trace (bad magic)"),
            BinError::BadVersion(v) => write!(f, "unsupported binary trace version {v}"),
            BinError::BadKind { offset, tag } => {
                write!(f, "unknown event kind tag {tag:#04x} at byte {offset}")
            }
            BinError::BadLength { offset, len } => {
                write!(f, "record at byte {offset} has implausible length {len}")
            }
            BinError::BadOrder { offset, value } => {
                write!(
                    f,
                    "unknown memory-order byte {value} in record at byte {offset}"
                )
            }
            BinError::BadMethod { offset, value } => {
                write!(f, "unknown method byte {value} in record at byte {offset}")
            }
            BinError::BadThreadCount { offset, value } => {
                write!(
                    f,
                    "implausible thread count {value} at byte {offset} (max {MAX_THREADS})"
                )
            }
        }
    }
}

impl std::error::Error for BinError {}

const K_READ: u8 = 0;
const K_WRITE: u8 = 1;
const K_ACQUIRE: u8 = 2;
const K_RELEASE: u8 = 3;
const K_FORK: u8 = 4;
const K_JOIN: u8 = 5;
const K_ALLOC: u8 = 6;
const K_FREE: u8 = 7;
const K_DEREF: u8 = 8;
const K_ATOMIC_LOAD: u8 = 9;
const K_ATOMIC_STORE: u8 = 10;
const K_ATOMIC_RMW: u8 = 11;
const K_FENCE: u8 = 12;
const K_INVOKE: u8 = 13;
const K_RESPONSE: u8 = 14;

fn order_byte(o: MemOrder) -> u8 {
    match o {
        MemOrder::Relaxed => 0,
        MemOrder::Acquire => 1,
        MemOrder::Release => 2,
        MemOrder::AcqRel => 3,
        MemOrder::SeqCst => 4,
    }
}

fn order_from(b: u8, offset: usize) -> Result<MemOrder, BinError> {
    Ok(match b {
        0 => MemOrder::Relaxed,
        1 => MemOrder::Acquire,
        2 => MemOrder::Release,
        3 => MemOrder::AcqRel,
        4 => MemOrder::SeqCst,
        _ => return Err(BinError::BadOrder { offset, value: b }),
    })
}

fn method_byte(m: Method) -> u8 {
    match m {
        Method::Add => 0,
        Method::Remove => 1,
        Method::Contains => 2,
    }
}

fn method_from(b: u8, offset: usize) -> Result<Method, BinError> {
    Ok(match b {
        0 => Method::Add,
        1 => Method::Remove,
        2 => Method::Contains,
        _ => return Err(BinError::BadMethod { offset, value: b }),
    })
}

/// Appends one length-prefixed record for `(thread, kind)` to `out`.
pub fn encode_event(thread: ThreadId, kind: &EventKind, out: &mut Vec<u8>) {
    let len_at = out.len();
    out.extend_from_slice(&[0, 0]); // length back-patched below
    let body_at = out.len();
    let push_u32 = |out: &mut Vec<u8>, v: u32| out.extend_from_slice(&v.to_le_bytes());
    let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
    let tag = match *kind {
        EventKind::Read { .. } => K_READ,
        EventKind::Write { .. } => K_WRITE,
        EventKind::Acquire { .. } => K_ACQUIRE,
        EventKind::Release { .. } => K_RELEASE,
        EventKind::Fork { .. } => K_FORK,
        EventKind::Join { .. } => K_JOIN,
        EventKind::Alloc { .. } => K_ALLOC,
        EventKind::Free { .. } => K_FREE,
        EventKind::Deref { .. } => K_DEREF,
        EventKind::AtomicLoad { .. } => K_ATOMIC_LOAD,
        EventKind::AtomicStore { .. } => K_ATOMIC_STORE,
        EventKind::AtomicRmw { .. } => K_ATOMIC_RMW,
        EventKind::Fence { .. } => K_FENCE,
        EventKind::Invoke { .. } => K_INVOKE,
        EventKind::Response { .. } => K_RESPONSE,
    };
    out.push(tag);
    push_u32(out, thread.0);
    match *kind {
        EventKind::Read { var, value } | EventKind::Write { var, value } => {
            push_u32(out, var.0);
            push_u64(out, value);
        }
        EventKind::Acquire { lock } | EventKind::Release { lock } => push_u32(out, lock.0),
        EventKind::Fork { child } | EventKind::Join { child } => push_u32(out, child.0),
        EventKind::Alloc { obj } | EventKind::Free { obj } => push_u32(out, obj.0),
        EventKind::Deref { obj, write } => {
            push_u32(out, obj.0);
            out.push(write as u8);
        }
        EventKind::AtomicLoad { var, order, value }
        | EventKind::AtomicStore { var, order, value } => {
            push_u32(out, var.0);
            out.push(order_byte(order));
            push_u64(out, value);
        }
        EventKind::AtomicRmw {
            var,
            order,
            read,
            write,
        } => {
            push_u32(out, var.0);
            out.push(order_byte(order));
            push_u64(out, read);
            push_u64(out, write);
        }
        EventKind::Fence { order } => out.push(order_byte(order)),
        EventKind::Invoke { op, method, arg } => {
            push_u32(out, op.0);
            out.push(method_byte(method));
            push_u64(out, arg);
        }
        EventKind::Response { op, result } => {
            push_u32(out, op.0);
            push_u64(out, result);
        }
    }
    let body_len = (out.len() - body_at) as u16;
    out[len_at..len_at + 2].copy_from_slice(&body_len.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
    record_at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.at + n > self.buf.len() {
            return Err(BinError::Truncated {
                offset: self.record_at,
            });
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// A decoded record plus the offset of the record after it.
pub type Decoded = ((ThreadId, EventKind), usize);

/// Decodes the record starting at `offset`. Returns `Ok(None)` when
/// `offset` is exactly the end of the buffer (a clean stream boundary),
/// otherwise the decoded event and the offset of the next record.
///
/// # Errors
///
/// Any malformation — the buffer ending inside the record, an unknown
/// kind/order/method tag, or a length field that disagrees with the
/// kind's field layout — is reported as a [`BinError`].
pub fn decode_event(buf: &[u8], offset: usize) -> Result<Option<Decoded>, BinError> {
    if offset == buf.len() {
        return Ok(None);
    }
    let mut c = Cursor {
        buf,
        at: offset,
        record_at: offset,
    };
    let body_len = u16::from_le_bytes(c.take(2)?.try_into().unwrap()) as usize;
    if !(5..=MAX_RECORD).contains(&body_len) {
        return Err(BinError::BadLength {
            offset,
            len: body_len,
        });
    }
    if c.at + body_len > buf.len() {
        return Err(BinError::Truncated { offset });
    }
    let body_end = c.at + body_len;
    let tag = c.u8()?;
    let thread = ThreadId(c.u32()?);
    if thread.index() >= MAX_THREADS {
        return Err(BinError::BadThreadCount {
            offset,
            value: thread.index(),
        });
    }
    let kind = match tag {
        K_READ | K_WRITE => {
            let var = c.u32()?.into();
            let value = c.u64()?;
            if tag == K_READ {
                EventKind::Read { var, value }
            } else {
                EventKind::Write { var, value }
            }
        }
        K_ACQUIRE => EventKind::Acquire {
            lock: c.u32()?.into(),
        },
        K_RELEASE => EventKind::Release {
            lock: c.u32()?.into(),
        },
        K_FORK => EventKind::Fork {
            child: ThreadId(c.u32()?),
        },
        K_JOIN => EventKind::Join {
            child: ThreadId(c.u32()?),
        },
        K_ALLOC => EventKind::Alloc {
            obj: c.u32()?.into(),
        },
        K_FREE => EventKind::Free {
            obj: c.u32()?.into(),
        },
        K_DEREF => EventKind::Deref {
            obj: c.u32()?.into(),
            write: c.u8()? != 0,
        },
        K_ATOMIC_LOAD | K_ATOMIC_STORE => {
            let var = c.u32()?.into();
            let order = order_from(c.u8()?, offset)?;
            let value = c.u64()?;
            if tag == K_ATOMIC_LOAD {
                EventKind::AtomicLoad { var, order, value }
            } else {
                EventKind::AtomicStore { var, order, value }
            }
        }
        K_ATOMIC_RMW => EventKind::AtomicRmw {
            var: c.u32()?.into(),
            order: order_from(c.u8()?, offset)?,
            read: c.u64()?,
            write: c.u64()?,
        },
        K_FENCE => EventKind::Fence {
            order: order_from(c.u8()?, offset)?,
        },
        K_INVOKE => EventKind::Invoke {
            op: c.u32()?.into(),
            method: method_from(c.u8()?, offset)?,
            arg: c.u64()?,
        },
        K_RESPONSE => EventKind::Response {
            op: c.u32()?.into(),
            result: c.u64()?,
        },
        _ => return Err(BinError::BadKind { offset, tag }),
    };
    if c.at != body_end {
        // The length field promised more (or fewer) bytes than the
        // kind's layout consumed: the record is internally
        // inconsistent, not merely short.
        return Err(BinError::BadLength {
            offset,
            len: body_len,
        });
    }
    Ok(Some(((thread, kind), c.at)))
}

/// Decodes a headerless record stream (the `csst-serve` wire framing:
/// each frame payload is a whole number of records).
///
/// # Errors
///
/// Propagates the first [`BinError`] of the stream; a buffer ending
/// mid-record is [`BinError::Truncated`].
pub fn decode_events(buf: &[u8]) -> Result<Vec<(ThreadId, EventKind)>, BinError> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((ev, next)) = decode_event(buf, at)? {
        out.push(ev);
        at = next;
    }
    Ok(out)
}

/// Encodes `trace` in the whole-trace file form (header + records in
/// observed total order).
pub fn write(trace: &Trace) -> Vec<u8> {
    let mut out = Vec::with_capacity(11 + trace.total_events() * 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(trace.num_threads() as u32).to_le_bytes());
    for (id, ev) in trace.iter_order() {
        encode_event(id.thread, &ev.kind, &mut out);
    }
    out
}

/// Parses the whole-trace file form produced by [`write()`].
///
/// # Errors
///
/// [`BinError::BadMagic`]/[`BinError::BadVersion`] for foreign input,
/// otherwise the first record-level malformation.
pub fn parse(bytes: &[u8]) -> Result<Trace, BinError> {
    if bytes.len() < 4 || bytes[..4] != MAGIC {
        return Err(BinError::BadMagic);
    }
    if bytes.len() < 9 {
        return Err(BinError::Truncated { offset: 4 });
    }
    if bytes[4] != VERSION {
        return Err(BinError::BadVersion(bytes[4]));
    }
    let threads = u32::from_le_bytes(bytes[5..9].try_into().unwrap()) as usize;
    if threads > MAX_THREADS {
        return Err(BinError::BadThreadCount {
            offset: 5,
            value: threads,
        });
    }
    let mut trace = Trace::new(threads);
    let mut at = 9;
    while let Some(((thread, kind), next)) = decode_event(bytes, at)? {
        trace.push(thread, kind);
        at = next;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn families() -> Vec<(&'static str, Trace)> {
        vec![
            (
                "racy",
                gen::racy_program(&gen::RacyProgramCfg {
                    threads: 4,
                    events_per_thread: 60,
                    ..Default::default()
                }),
            ),
            (
                "locks",
                gen::lock_program(&gen::LockProgramCfg {
                    threads: 3,
                    blocks_per_thread: 20,
                    ..Default::default()
                }),
            ),
            (
                "alloc",
                gen::alloc_program(&gen::AllocProgramCfg {
                    threads: 3,
                    objects: 30,
                    ..Default::default()
                }),
            ),
            (
                "tso",
                gen::tso_history(&gen::TsoCfg {
                    threads: 3,
                    events_per_thread: 40,
                    ..Default::default()
                }),
            ),
            (
                "c11",
                gen::c11_program(&gen::C11Cfg {
                    threads: 3,
                    events_per_thread: 40,
                    ..Default::default()
                }),
            ),
            (
                "objects",
                gen::object_history(&gen::ObjectHistoryCfg {
                    threads: 3,
                    ops_per_thread: 20,
                    ..Default::default()
                }),
            ),
        ]
    }

    #[test]
    fn roundtrip_every_generator_family() {
        for (name, trace) in families() {
            let bytes = write(&trace);
            let back = parse(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(back.num_threads(), trace.num_threads(), "{name}");
            assert_eq!(back.total_events(), trace.total_events(), "{name}");
            for ((a_id, a), (b_id, b)) in trace.iter_order().zip(back.iter_order()) {
                assert_eq!(a_id, b_id, "{name}");
                assert_eq!(a.kind, b.kind, "{name}");
            }
        }
    }

    #[test]
    fn headerless_stream_roundtrip() {
        let trace = gen::racy_program(&gen::RacyProgramCfg {
            threads: 3,
            events_per_thread: 30,
            ..Default::default()
        });
        let mut buf = Vec::new();
        for (id, ev) in trace.iter_order() {
            encode_event(id.thread, &ev.kind, &mut buf);
        }
        let events = decode_events(&buf).unwrap();
        assert_eq!(events.len(), trace.total_events());
        for ((t, k), (id, ev)) in events.iter().zip(trace.iter_order()) {
            assert_eq!(*t, id.thread);
            assert_eq!(*k, ev.kind);
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let (_, trace) = families().swap_remove(0);
        let bytes = write(&trace);
        // Record boundaries: cutting exactly there yields a valid,
        // shorter trace (records are self-delimiting); cutting anywhere
        // else must produce an error, never a panic.
        let mut boundaries = vec![9];
        let mut at = 9;
        while at < bytes.len() {
            at += 2 + u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap()) as usize;
            boundaries.push(at);
        }
        for cut in 0..bytes.len() {
            let r = parse(&bytes[..cut]);
            if boundaries.contains(&cut) {
                let short = r.unwrap_or_else(|e| panic!("boundary cut {cut}: {e}"));
                assert!(short.total_events() < trace.total_events());
            } else {
                assert!(r.is_err(), "prefix of {cut} bytes must not parse");
            }
        }
        assert!(parse(&bytes).is_ok());
    }

    #[test]
    fn malformed_frames_are_errors() {
        assert!(matches!(parse(b""), Err(BinError::BadMagic)));
        assert!(matches!(parse(b"NOPE....."), Err(BinError::BadMagic)));
        assert!(matches!(
            parse(b"CSTB"),
            Err(BinError::Truncated { offset: 4 })
        ));
        assert!(matches!(
            parse(b"CSTB\x09\0\0\0\0"),
            Err(BinError::BadVersion(9))
        ));

        // A record with an unknown kind tag.
        let mut buf = Vec::new();
        encode_event(
            ThreadId(0),
            &EventKind::Fence {
                order: MemOrder::SeqCst,
            },
            &mut buf,
        );
        buf[2] = 0x7F; // kind byte of the first record
        assert!(matches!(
            decode_events(&buf),
            Err(BinError::BadKind {
                offset: 0,
                tag: 0x7F
            })
        ));

        // A corrupt memory-order byte.
        let mut buf = Vec::new();
        encode_event(
            ThreadId(0),
            &EventKind::Fence {
                order: MemOrder::SeqCst,
            },
            &mut buf,
        );
        *buf.last_mut().unwrap() = 99;
        assert!(matches!(
            decode_events(&buf),
            Err(BinError::BadOrder { value: 99, .. })
        ));

        // A corrupt method byte.
        let mut buf = Vec::new();
        encode_event(
            ThreadId(0),
            &EventKind::Invoke {
                op: 3.into(),
                method: Method::Add,
                arg: 7,
            },
            &mut buf,
        );
        buf[2 + 1 + 4 + 4] = 42; // method byte: after len, kind, thread, op
        assert!(matches!(
            decode_events(&buf),
            Err(BinError::BadMethod { value: 42, .. })
        ));

        // Length fields that disagree with the kind's layout.
        let mut buf = Vec::new();
        encode_event(
            ThreadId(0),
            &EventKind::Acquire { lock: 1.into() },
            &mut buf,
        );
        buf[0] = 26; // claims the max body on a 9-byte record
        assert!(matches!(
            decode_events(&buf),
            Err(BinError::Truncated { .. })
        ));
        let mut buf = Vec::new();
        encode_event(
            ThreadId(0),
            &EventKind::Write {
                var: 1.into(),
                value: 2,
            },
            &mut buf,
        );
        buf[0] = 9; // shorter than the Write layout consumes
        assert!(matches!(
            decode_events(&buf),
            Err(BinError::BadLength { len: 9, .. })
        ));
        // Implausible lengths (too small / too large) are rejected
        // before any field decoding.
        assert!(matches!(
            decode_event(&[0, 0, 0], 0),
            Err(BinError::BadLength { len: 0, .. })
        ));
        assert!(matches!(
            decode_event(&[0xFF, 0xFF, 0], 0),
            Err(BinError::BadLength { .. })
        ));
    }

    #[test]
    fn every_event_kind_roundtrips() {
        use EventKind as K;
        let kinds = [
            K::Read {
                var: 1.into(),
                value: 2,
            },
            K::Write {
                var: 3.into(),
                value: u64::MAX,
            },
            K::Acquire { lock: 4.into() },
            K::Release { lock: 5.into() },
            K::Fork { child: ThreadId(6) },
            K::Join { child: ThreadId(7) },
            K::Alloc { obj: 8.into() },
            K::Free { obj: 9.into() },
            K::Deref {
                obj: 10.into(),
                write: true,
            },
            K::Deref {
                obj: 11.into(),
                write: false,
            },
            K::AtomicLoad {
                var: 12.into(),
                order: MemOrder::Acquire,
                value: 1,
            },
            K::AtomicStore {
                var: 13.into(),
                order: MemOrder::Release,
                value: 2,
            },
            K::AtomicRmw {
                var: 14.into(),
                order: MemOrder::AcqRel,
                read: 3,
                write: 4,
            },
            K::Fence {
                order: MemOrder::SeqCst,
            },
            K::Invoke {
                op: 15.into(),
                method: Method::Contains,
                arg: 5,
            },
            K::Response {
                op: 16.into(),
                result: 1,
            },
        ];
        let mut buf = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            encode_event(ThreadId(i as u32), k, &mut buf);
        }
        let back = decode_events(&buf).unwrap();
        assert_eq!(back.len(), kinds.len());
        for (i, (t, k)) in back.iter().enumerate() {
            assert_eq!(t.0, i as u32);
            assert_eq!(k, &kinds[i]);
        }
    }
}
