//! Ergonomic trace construction with name interning.

use crate::event::{EventKind, LockId, MemOrder, Method, ObjId, OpId, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use std::collections::HashMap;

/// Builds a [`Trace`] step by step, interleaving threads freely, with
/// variables/locks/objects interned by name.
///
/// ```
/// use csst_trace::TraceBuilder;
///
/// let mut b = TraceBuilder::new();
/// let x = b.var("x");
/// b.on(0).write(x, 1);
/// b.on(1).read(x, 1);
/// let trace = b.build();
/// assert_eq!(trace.total_events(), 2);
/// ```
#[derive(Debug, Default)]
pub struct TraceBuilder {
    trace: Trace,
    vars: HashMap<String, VarId>,
    locks: HashMap<String, LockId>,
    objs: HashMap<String, ObjId>,
    next_op: u32,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable by name.
    pub fn var(&mut self, name: &str) -> VarId {
        let next = self.vars.len() as u32;
        *self.vars.entry(name.to_owned()).or_insert(VarId(next))
    }

    /// Interns a lock by name.
    pub fn lock(&mut self, name: &str) -> LockId {
        let next = self.locks.len() as u32;
        *self.locks.entry(name.to_owned()).or_insert(LockId(next))
    }

    /// Interns a heap object by name.
    pub fn obj(&mut self, name: &str) -> ObjId {
        let next = self.objs.len() as u32;
        *self.objs.entry(name.to_owned()).or_insert(ObjId(next))
    }

    /// Allocates a fresh operation id for an invoke/response pair.
    pub fn fresh_op(&mut self) -> OpId {
        let op = OpId(self.next_op);
        self.next_op += 1;
        op
    }

    /// Positions the builder on thread `t`; subsequent events are
    /// appended there.
    pub fn on(&mut self, t: impl Into<ThreadId>) -> ThreadCursor<'_> {
        ThreadCursor {
            builder: self,
            thread: t.into(),
        }
    }

    /// Appends a raw event.
    pub fn push(&mut self, t: impl Into<ThreadId>, kind: EventKind) -> csst_core::NodeId {
        self.trace.push(t, kind)
    }

    /// Finishes construction.
    pub fn build(self) -> Trace {
        self.trace
    }
}

/// A builder cursor positioned on one thread; every method appends one
/// event and returns the event's id.
#[derive(Debug)]
pub struct ThreadCursor<'a> {
    builder: &'a mut TraceBuilder,
    thread: ThreadId,
}

impl ThreadCursor<'_> {
    fn push(&mut self, kind: EventKind) -> csst_core::NodeId {
        self.builder.trace.push(self.thread, kind)
    }

    /// Appends `r(var, value)`.
    pub fn read(&mut self, var: VarId, value: u64) -> csst_core::NodeId {
        self.push(EventKind::Read { var, value })
    }

    /// Appends `w(var, value)`.
    pub fn write(&mut self, var: VarId, value: u64) -> csst_core::NodeId {
        self.push(EventKind::Write { var, value })
    }

    /// Appends `acq(lock)`.
    pub fn acquire(&mut self, lock: LockId) -> csst_core::NodeId {
        self.push(EventKind::Acquire { lock })
    }

    /// Appends `rel(lock)`.
    pub fn release(&mut self, lock: LockId) -> csst_core::NodeId {
        self.push(EventKind::Release { lock })
    }

    /// Appends `fork(child)`.
    pub fn fork(&mut self, child: impl Into<ThreadId>) -> csst_core::NodeId {
        self.push(EventKind::Fork {
            child: child.into(),
        })
    }

    /// Appends `join(child)`.
    pub fn join(&mut self, child: impl Into<ThreadId>) -> csst_core::NodeId {
        self.push(EventKind::Join {
            child: child.into(),
        })
    }

    /// Appends `alloc(obj)`.
    pub fn alloc(&mut self, obj: ObjId) -> csst_core::NodeId {
        self.push(EventKind::Alloc { obj })
    }

    /// Appends `free(obj)`.
    pub fn free(&mut self, obj: ObjId) -> csst_core::NodeId {
        self.push(EventKind::Free { obj })
    }

    /// Appends a pointer dereference of `obj`.
    pub fn deref(&mut self, obj: ObjId, write: bool) -> csst_core::NodeId {
        self.push(EventKind::Deref { obj, write })
    }

    /// Appends an atomic load.
    pub fn atomic_load(&mut self, var: VarId, order: MemOrder, value: u64) -> csst_core::NodeId {
        self.push(EventKind::AtomicLoad { var, order, value })
    }

    /// Appends an atomic store.
    pub fn atomic_store(&mut self, var: VarId, order: MemOrder, value: u64) -> csst_core::NodeId {
        self.push(EventKind::AtomicStore { var, order, value })
    }

    /// Appends an atomic read-modify-write.
    pub fn atomic_rmw(
        &mut self,
        var: VarId,
        order: MemOrder,
        read: u64,
        write: u64,
    ) -> csst_core::NodeId {
        self.push(EventKind::AtomicRmw {
            var,
            order,
            read,
            write,
        })
    }

    /// Appends a fence.
    pub fn fence(&mut self, order: MemOrder) -> csst_core::NodeId {
        self.push(EventKind::Fence { order })
    }

    /// Appends an operation invocation (allocating a fresh op id) and
    /// returns `(event, op)`.
    pub fn invoke(&mut self, method: Method, arg: u64) -> (csst_core::NodeId, OpId) {
        let op = self.builder.fresh_op();
        let id = self
            .builder
            .trace
            .push(self.thread, EventKind::Invoke { op, method, arg });
        (id, op)
    }

    /// Appends the response of `op`.
    pub fn respond(&mut self, op: OpId, result: u64) -> csst_core::NodeId {
        self.push(EventKind::Response { op, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind as K;

    #[test]
    fn interning_is_stable() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        assert_ne!(x, y);
        assert_eq!(b.var("x"), x);
        let l = b.lock("m");
        assert_eq!(b.lock("m"), l);
        let o = b.obj("p");
        assert_eq!(b.obj("p"), o);
    }

    #[test]
    fn figure_1_trace() {
        // The motivating example of Figure 1 (threads 0..2).
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.on(0).write(x, 1); // e0
        b.on(1).write(x, 3); // e3
        b.on(1).write(y, 4); // e4
        b.on(1).write(y, 5); // e5
        b.on(0).read(y, 5); // e1
        b.on(0).read(x, 3); // e2
        b.on(2).write(x, 3); // e6
        b.on(2).read(y, 4); // en
        let t = b.build();
        assert_eq!(t.num_threads(), 3);
        assert_eq!(t.thread_len(ThreadId(0)), 3);
        assert_eq!(t.thread_len(ThreadId(1)), 3);
        assert_eq!(t.thread_len(ThreadId(2)), 2);
        assert!(matches!(
            t.kind(csst_core::NodeId::new(0, 2)),
            K::Read { value: 3, .. }
        ));
    }

    #[test]
    fn invoke_respond_pairs() {
        let mut b = TraceBuilder::new();
        let (i1, op1) = b.on(0).invoke(Method::Add, 4);
        let (i2, op2) = b.on(1).invoke(Method::Contains, 4);
        b.on(0).respond(op1, 1);
        b.on(1).respond(op2, 0);
        assert_ne!(op1, op2);
        let t = b.build();
        assert!(matches!(
            t.kind(i1),
            K::Invoke {
                method: Method::Add,
                ..
            }
        ));
        assert!(matches!(
            t.kind(i2),
            K::Invoke {
                method: Method::Contains,
                ..
            }
        ));
    }
}
