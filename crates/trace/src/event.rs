//! The event model of concurrent execution traces (§2.1).
//!
//! An event is a tuple `⟨t, i, m⟩`: thread `t`, sequence id `i`, and
//! meta information `m`. CSSTs only ever look at `⟨t, i⟩` (a
//! [`NodeId`](csst_core::NodeId)); the meta information — what the
//! event *does* — is what the analyses interpret, and is modelled by
//! [`EventKind`].

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index, for table lookups.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A shared variable (memory location).
    VarId,
    "x"
);
id_type!(
    /// A lock (mutex).
    LockId,
    "l"
);
id_type!(
    /// A heap object, for allocation-lifetime analyses.
    ObjId,
    "o"
);
id_type!(
    /// An operation instance on a concurrent object (one
    /// invoke/response interval).
    OpId,
    "op"
);

/// C11-style memory orders, used by atomic events.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemOrder {
    /// `memory_order_relaxed`.
    Relaxed,
    /// `memory_order_acquire` (loads).
    Acquire,
    /// `memory_order_release` (stores).
    Release,
    /// `memory_order_acq_rel` (read-modify-writes).
    AcqRel,
    /// `memory_order_seq_cst`.
    SeqCst,
}

impl MemOrder {
    /// `true` if the order has acquire semantics on a load.
    pub fn is_acquire(self) -> bool {
        matches!(
            self,
            MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// `true` if the order has release semantics on a store.
    pub fn is_release(self) -> bool {
        matches!(
            self,
            MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst
        )
    }

    /// Short textual form used by the trace format.
    pub fn as_str(self) -> &'static str {
        match self {
            MemOrder::Relaxed => "rlx",
            MemOrder::Acquire => "acq",
            MemOrder::Release => "rel",
            MemOrder::AcqRel => "acqrel",
            MemOrder::SeqCst => "sc",
        }
    }

    /// Parses the textual form produced by [`MemOrder::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "rlx" => MemOrder::Relaxed,
            "acq" => MemOrder::Acquire,
            "rel" => MemOrder::Release,
            "acqrel" => MemOrder::AcqRel,
            "sc" => MemOrder::SeqCst,
            _ => return None,
        })
    }
}

impl fmt::Display for MemOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Methods of the concurrent-object histories used by the
/// linearizability analysis (a set/queue-style object).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Method {
    /// `add(arg) -> bool`.
    Add,
    /// `remove(arg) -> bool`.
    Remove,
    /// `contains(arg) -> bool`.
    Contains,
}

impl Method {
    /// Short textual form used by the trace format.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Add => "add",
            Method::Remove => "remove",
            Method::Contains => "contains",
        }
    }

    /// Parses the textual form produced by [`Method::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "add" => Method::Add,
            "remove" => Method::Remove,
            "contains" => Method::Contains,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What an event does — the meta information `m` of §2.1.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// Plain (non-atomic) read of `var` observing `value`.
    Read {
        /// Variable read.
        var: VarId,
        /// Value observed.
        value: u64,
    },
    /// Plain (non-atomic) write of `value` to `var`.
    Write {
        /// Variable written.
        var: VarId,
        /// Value written.
        value: u64,
    },
    /// Lock acquisition.
    Acquire {
        /// The lock.
        lock: LockId,
    },
    /// Lock release.
    Release {
        /// The lock.
        lock: LockId,
    },
    /// Thread creation; orders the forking event before the child's
    /// first event.
    Fork {
        /// The created thread.
        child: csst_core::ThreadId,
    },
    /// Thread join; orders the child's last event before this event.
    Join {
        /// The joined thread.
        child: csst_core::ThreadId,
    },
    /// Heap allocation of `obj`.
    Alloc {
        /// The allocated object.
        obj: ObjId,
    },
    /// Heap deallocation of `obj`.
    Free {
        /// The freed object.
        obj: ObjId,
    },
    /// Memory access through a pointer to `obj` (the "use" of
    /// use-after-free analyses).
    Deref {
        /// The object accessed.
        obj: ObjId,
        /// Whether the access writes.
        write: bool,
    },
    /// C11 atomic load.
    AtomicLoad {
        /// Variable.
        var: VarId,
        /// Memory order.
        order: MemOrder,
        /// Value observed.
        value: u64,
    },
    /// C11 atomic store.
    AtomicStore {
        /// Variable.
        var: VarId,
        /// Memory order.
        order: MemOrder,
        /// Value stored.
        value: u64,
    },
    /// C11 atomic read-modify-write.
    AtomicRmw {
        /// Variable.
        var: VarId,
        /// Memory order.
        order: MemOrder,
        /// Value read.
        read: u64,
        /// Value written.
        write: u64,
    },
    /// C11 fence.
    Fence {
        /// Memory order.
        order: MemOrder,
    },
    /// Invocation of an operation on a concurrent object.
    Invoke {
        /// The operation instance.
        op: OpId,
        /// The method invoked.
        method: Method,
        /// The argument.
        arg: u64,
    },
    /// Response of an operation on a concurrent object.
    Response {
        /// The operation instance.
        op: OpId,
        /// The returned value (0/1 for booleans).
        result: u64,
    },
}

impl EventKind {
    /// The variable accessed, for plain and atomic accesses.
    pub fn var(&self) -> Option<VarId> {
        match *self {
            EventKind::Read { var, .. }
            | EventKind::Write { var, .. }
            | EventKind::AtomicLoad { var, .. }
            | EventKind::AtomicStore { var, .. }
            | EventKind::AtomicRmw { var, .. } => Some(var),
            _ => None,
        }
    }

    /// `true` for events that write a plain variable.
    pub fn is_plain_write(&self) -> bool {
        matches!(self, EventKind::Write { .. })
    }

    /// `true` for events that read a plain variable.
    pub fn is_plain_read(&self) -> bool {
        matches!(self, EventKind::Read { .. })
    }

    /// `true` if two plain accesses to the same variable conflict
    /// (at least one is a write).
    pub fn conflicts_with(&self, other: &EventKind) -> bool {
        match (self.var(), other.var()) {
            (Some(a), Some(b)) if a == b => self.is_plain_write() || other.is_plain_write(),
            _ => false,
        }
    }
}

/// One event of a trace: its kind plus the position in the observed
/// total order (filled by the trace container).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Event {
    /// The meta information.
    pub kind: EventKind,
    /// Index of this event in the observed total (trace) order.
    pub trace_pos: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_order_roundtrip() {
        for o in [
            MemOrder::Relaxed,
            MemOrder::Acquire,
            MemOrder::Release,
            MemOrder::AcqRel,
            MemOrder::SeqCst,
        ] {
            assert_eq!(MemOrder::parse(o.as_str()), Some(o));
        }
        assert_eq!(MemOrder::parse("bogus"), None);
        assert!(MemOrder::SeqCst.is_acquire() && MemOrder::SeqCst.is_release());
        assert!(!MemOrder::Relaxed.is_acquire());
        assert!(MemOrder::Acquire.is_acquire() && !MemOrder::Acquire.is_release());
    }

    #[test]
    fn method_roundtrip() {
        for m in [Method::Add, Method::Remove, Method::Contains] {
            assert_eq!(Method::parse(m.as_str()), Some(m));
        }
        assert_eq!(Method::parse("push"), None);
    }

    #[test]
    fn conflicts() {
        let w = EventKind::Write {
            var: VarId(0),
            value: 1,
        };
        let r = EventKind::Read {
            var: VarId(0),
            value: 1,
        };
        let r2 = EventKind::Read {
            var: VarId(1),
            value: 0,
        };
        assert!(w.conflicts_with(&r));
        assert!(r.conflicts_with(&w));
        assert!(w.conflicts_with(&w));
        assert!(!r.conflicts_with(&r));
        assert!(!w.conflicts_with(&r2));
        let aq = EventKind::Acquire { lock: LockId(0) };
        assert!(!w.conflicts_with(&aq));
    }

    #[test]
    fn id_display() {
        assert_eq!(VarId(3).to_string(), "x3");
        assert_eq!(LockId(1).to_string(), "l1");
        assert_eq!(ObjId(2).to_string(), "o2");
        assert_eq!(OpId(9).to_string(), "op9");
        assert_eq!(VarId::from(4u32).index(), 4);
    }
}
