//! Allocation-lifetime programs — the workload family of the memory
//! bug prediction (Table 3) and use-after-free (Table 5) experiments.

use super::{pick_active, rng_from_seed};
use crate::event::{EventKind, LockId, ObjId, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use rand::Rng;

/// Configuration of [`alloc_program`].
#[derive(Debug, Clone)]
pub struct AllocProgramCfg {
    /// Number of threads.
    pub threads: usize,
    /// Number of heap objects over the trace.
    pub objects: usize,
    /// Dereferences per object.
    pub derefs_per_object: usize,
    /// Probability that an object's lifetime is lock-protected (every
    /// deref and the free happen under a common lock).
    pub protected_frac: f64,
    /// Probability that an (otherwise unprotected) object is
    /// *thread-confined with a handoff*: only the owner dereferences
    /// it, then publishes a flag the freeing thread reads before the
    /// free — a happens-before edge making the lifetime safe.
    pub confined_frac: f64,
    /// Probability that the free happens on a different thread than
    /// the allocation.
    pub remote_free_frac: f64,
    /// Number of locks used for protection.
    pub locks: usize,
    /// RNG seed.
    pub seed: u64,
    /// Soft cap on emitted events; `None` runs every lifetime to
    /// completion. When the cap is reached the generator admits no new
    /// objects and *drains* the live ones through their complete free
    /// protocols (handoff write→read→free, lock acquire→free→release),
    /// so the truncated trace is still a well-formed prefix: no leaked
    /// objects, no free cut off from its handoff read. A hard cutoff
    /// here used to leave half-emitted lifetimes that downstream
    /// consumers (windowed analyses, the well-formedness checks)
    /// rejected with "expected flag read before free".
    pub max_events: Option<usize>,
}

impl Default for AllocProgramCfg {
    fn default() -> Self {
        AllocProgramCfg {
            threads: 4,
            objects: 40,
            derefs_per_object: 6,
            protected_frac: 0.3,
            confined_frac: 0.3,
            remote_free_frac: 0.5,
            locks: 2,
            seed: 0,
            max_events: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protection {
    /// Derefs and free under a common lock.
    Lock(LockId),
    /// Owner-confined derefs + flag handoff to the freer.
    Handoff,
    /// Nothing orders uses and free: the bug candidates.
    None,
}

/// Simulates a producer/consumer-style heap workload: objects are
/// allocated, dereferenced, and eventually freed — in the observed
/// trace always *after* every use, so any use-after-free is a
/// predicted reordering, not an observed crash.
///
/// Three lifetime disciplines are mixed: lock-protected, confined with
/// a reads-from handoff (both safe), and unprotected remote frees (the
/// candidates the analyses should report).
pub fn alloc_program(cfg: &AllocProgramCfg) -> Trace {
    assert!(cfg.threads >= 2, "need at least an allocator and a user");
    let mut rng = rng_from_seed(cfg.seed);
    let mut trace = Trace::new(cfg.threads);

    #[derive(Debug)]
    struct Live {
        obj: ObjId,
        owner: usize,
        derefs_left: usize,
        protection: Protection,
        freer: usize,
        last_deref_thread: usize,
        next_flag_value: u64,
    }
    let mut next_obj = 0usize;
    let mut live: Vec<Live> = Vec::new();
    let mut budget = vec![0usize; cfg.threads];

    while next_obj < cfg.objects || !live.is_empty() {
        // Once the event cap is hit, stop admitting and stop
        // dereferencing: the remaining iterations only drain live
        // objects through their full free protocols.
        let draining = cfg.max_events.is_some_and(|m| trace.total_events() >= m);
        if draining && live.is_empty() {
            break;
        }
        // Admit new objects while the window has room.
        while !draining && next_obj < cfg.objects && live.len() < 4 {
            let owner = rng.gen_range(0..cfg.threads);
            let protection = if cfg.locks > 0 && rng.gen_bool(cfg.protected_frac) {
                Protection::Lock(LockId(rng.gen_range(0..cfg.locks) as u32))
            } else if rng.gen_bool(cfg.confined_frac) {
                Protection::Handoff
            } else {
                Protection::None
            };
            let freer = if rng.gen_bool(cfg.remote_free_frac) {
                (owner + 1 + rng.gen_range(0..cfg.threads - 1)) % cfg.threads
            } else {
                owner
            };
            let obj = ObjId(next_obj as u32);
            next_obj += 1;
            if let Protection::Lock(l) = protection {
                trace.push(ThreadId::from_index(owner), EventKind::Acquire { lock: l });
                trace.push(ThreadId::from_index(owner), EventKind::Alloc { obj });
                trace.push(ThreadId::from_index(owner), EventKind::Release { lock: l });
            } else {
                trace.push(ThreadId::from_index(owner), EventKind::Alloc { obj });
            }
            live.push(Live {
                obj,
                owner,
                derefs_left: cfg.derefs_per_object,
                protection,
                freer,
                last_deref_thread: owner,
                next_flag_value: 1,
            });
        }
        // Progress a random live object.
        let i = rng.gen_range(0..live.len());
        let entry = &mut live[i];
        if entry.derefs_left > 0 && !draining {
            entry.derefs_left -= 1;
            let t = match entry.protection {
                Protection::Handoff => entry.owner, // confined
                _ => {
                    if rng.gen_bool(0.5) {
                        entry.owner
                    } else {
                        rng.gen_range(0..cfg.threads)
                    }
                }
            };
            entry.last_deref_thread = t;
            budget[t] += 1;
            let write = rng.gen_bool(0.3);
            if let Protection::Lock(l) = entry.protection {
                trace.push(ThreadId::from_index(t), EventKind::Acquire { lock: l });
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Deref {
                        obj: entry.obj,
                        write,
                    },
                );
                trace.push(ThreadId::from_index(t), EventKind::Release { lock: l });
            } else {
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Deref {
                        obj: entry.obj,
                        write,
                    },
                );
            }
        } else {
            let Live {
                obj,
                protection,
                freer,
                last_deref_thread,
                next_flag_value,
                ..
            } = live.swap_remove(i);
            match protection {
                Protection::Lock(l) => {
                    trace.push(ThreadId::from_index(freer), EventKind::Acquire { lock: l });
                    trace.push(ThreadId::from_index(freer), EventKind::Free { obj });
                    trace.push(ThreadId::from_index(freer), EventKind::Release { lock: l });
                }
                Protection::Handoff => {
                    // The flag variable of this object: the last user
                    // publishes, the freer acquires the handoff.
                    let flag = VarId(obj.0);
                    trace.push(
                        ThreadId::from_index(last_deref_thread),
                        EventKind::Write {
                            var: flag,
                            value: next_flag_value,
                        },
                    );
                    trace.push(
                        ThreadId::from_index(freer),
                        EventKind::Read {
                            var: flag,
                            value: next_flag_value,
                        },
                    );
                    trace.push(ThreadId::from_index(freer), EventKind::Free { obj });
                }
                Protection::None => {
                    trace.push(ThreadId::from_index(freer), EventKind::Free { obj });
                }
            }
        }
        let _ = pick_active(&mut rng, &budget); // keep RNG stream moving
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn lifetimes_are_well_formed() {
        let t = alloc_program(&AllocProgramCfg::default());
        // Every object: exactly one alloc, one free, derefs in between
        // (in trace order).
        #[derive(Default, Debug)]
        struct State {
            allocated: bool,
            freed: bool,
            derefs: usize,
        }
        let mut state: HashMap<ObjId, State> = HashMap::new();
        for (_, ev) in t.iter_order() {
            match ev.kind {
                EventKind::Alloc { obj } => {
                    let s = state.entry(obj).or_default();
                    assert!(!s.allocated, "double alloc of {obj}");
                    s.allocated = true;
                }
                EventKind::Free { obj } => {
                    let s = state.entry(obj).or_default();
                    assert!(s.allocated && !s.freed, "bad free of {obj}");
                    s.freed = true;
                }
                EventKind::Deref { obj, .. } => {
                    let s = state.entry(obj).or_default();
                    assert!(
                        s.allocated && !s.freed,
                        "observed use-after-free of {obj} (the trace must be clean)"
                    );
                    s.derefs += 1;
                }
                _ => {}
            }
        }
        assert_eq!(state.len(), 40);
        for (obj, s) in state {
            assert!(s.allocated && s.freed, "{obj} leaked");
            assert_eq!(s.derefs, 6);
        }
    }

    #[test]
    fn deterministic() {
        let cfg = AllocProgramCfg::default();
        assert_eq!(alloc_program(&cfg).order(), alloc_program(&cfg).order());
    }

    #[test]
    fn unprotected_mode_has_no_locks() {
        let t = alloc_program(&AllocProgramCfg {
            protected_frac: 0.0,
            ..Default::default()
        });
        assert!(t.critical_sections().is_empty());
    }

    #[test]
    fn capped_runs_emit_well_formed_prefixes() {
        // Sweep seeds with a tight event cap: every truncated trace
        // must still be a clean prefix — no leaked objects, no observed
        // use-after-free, and every handoff free still immediately
        // preceded by its flag read on the freeing thread (the
        // invariant that used to panic for mid-protocol cutoffs).
        for seed in 0..32 {
            let t = alloc_program(&AllocProgramCfg {
                protected_frac: 0.0,
                confined_frac: 1.0,
                remote_free_frac: 1.0,
                max_events: Some(50),
                seed,
                ..Default::default()
            });
            let mut state: HashMap<ObjId, (bool, bool)> = HashMap::new();
            for (id, ev) in t.iter_order() {
                match ev.kind {
                    EventKind::Alloc { obj } => {
                        assert!(
                            state.insert(obj, (true, false)).is_none(),
                            "seed {seed}: double alloc of {obj}"
                        );
                    }
                    EventKind::Deref { obj, .. } => {
                        let s = state[&obj];
                        assert!(s.0 && !s.1, "seed {seed}: bad deref of {obj}");
                    }
                    EventKind::Free { obj } => {
                        let s = state.get_mut(&obj).expect("free before alloc");
                        assert!(s.0 && !s.1, "seed {seed}: bad free of {obj}");
                        s.1 = true;
                        assert!(id.pos > 0, "seed {seed}: free must follow the handoff read");
                        let prev = csst_core::NodeId::new(id.thread, id.pos - 1);
                        match t.kind(prev) {
                            EventKind::Read { var, .. } => {
                                assert_eq!(var.0, obj.0, "seed {seed}: flag matches object");
                            }
                            other => {
                                panic!("seed {seed}: expected flag read before free, got {other:?}")
                            }
                        }
                    }
                    _ => {}
                }
            }
            for (obj, (_, freed)) in &state {
                assert!(freed, "seed {seed}: {obj} leaked in the prefix");
            }
        }
    }

    #[test]
    fn handoff_objects_publish_flags() {
        let t = alloc_program(&AllocProgramCfg {
            protected_frac: 0.0,
            confined_frac: 1.0,
            remote_free_frac: 1.0,
            seed: 3,
            ..Default::default()
        });
        // Every free must be preceded (in trace order) by a read of the
        // object's flag on the freeing thread.
        let rf = t.reads_from();
        let mut handoffs = 0;
        for (id, ev) in t.iter_order() {
            if let EventKind::Free { obj } = ev.kind {
                // The freer's previous event is the flag read.
                assert!(id.pos > 0, "free must follow the handoff read");
                let prev = csst_core::NodeId::new(id.thread, id.pos - 1);
                match t.kind(prev) {
                    EventKind::Read { var, .. } => {
                        assert_eq!(var.0, obj.0, "flag variable matches object");
                        if rf.get(&prev).is_some_and(|w| w.thread != id.thread) {
                            handoffs += 1;
                        }
                    }
                    other => panic!("expected flag read before free, got {other:?}"),
                }
            }
        }
        assert!(handoffs > 0, "cross-thread handoffs must occur");
    }
}
