//! C11 atomic programs — the workload family of the C11 race detection
//! experiment (Table 6).
//!
//! C11Tester-style analyses process the trace in order; most new
//! orderings attach to the *current* event (streaming), which is the
//! regime where vector clocks win (the paper's own negative result).
//! The `middle_sync_frac` knob injects release-sequence patterns that
//! force orderings between middle-of-trace events — the
//! `readerswriters`/`atomicblocks` behaviour where CSSTs win again.

use super::{pick_active, rng_from_seed};
use crate::event::{EventKind, MemOrder, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use rand::Rng;

/// Configuration of [`c11_program`].
#[derive(Debug, Clone)]
pub struct C11Cfg {
    /// Number of threads.
    pub threads: usize,
    /// Events per thread.
    pub events_per_thread: usize,
    /// Number of atomic variables.
    pub atomic_vars: usize,
    /// Number of non-atomic variables (the race candidates).
    pub plain_vars: usize,
    /// Fraction of atomic stores carrying release semantics (their
    /// acquire-load readers create sw edges).
    pub release_frac: f64,
    /// Fraction of events that are plain (non-atomic) accesses.
    pub plain_frac: f64,
    /// Fraction of atomic operations that are RMWs.
    pub rmw_frac: f64,
    /// Fraction of scheduler rounds that emit a "late reader" of an
    /// old store, creating orderings between middle-of-trace events.
    pub middle_sync_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for C11Cfg {
    fn default() -> Self {
        C11Cfg {
            threads: 4,
            events_per_thread: 300,
            atomic_vars: 4,
            plain_vars: 6,
            release_frac: 0.6,
            plain_frac: 0.4,
            rmw_frac: 0.15,
            middle_sync_frac: 0.0,
            seed: 0,
        }
    }
}

/// Simulates a sequentially consistent execution of a mixed
/// atomic/non-atomic program. Atomic writes carry globally unique
/// values (so readers determine the reads-from map); plain accesses
/// use per-variable counters.
pub fn c11_program(cfg: &C11Cfg) -> Trace {
    assert!(cfg.threads >= 1 && cfg.atomic_vars >= 1 && cfg.plain_vars >= 1);
    let mut rng = rng_from_seed(cfg.seed);
    let mut trace = Trace::new(cfg.threads);
    let mut remaining = vec![cfg.events_per_thread; cfg.threads];
    // Current value of each atomic variable plus, for the late-reader
    // pattern, one retained *stale* value per variable (the value the
    // variable held one store ago).
    let mut atomic_now: Vec<u64> = vec![0; cfg.atomic_vars];
    let mut atomic_stale: Vec<u64> = vec![0; cfg.atomic_vars];
    let mut plain_now: Vec<u64> = vec![0; cfg.plain_vars];
    let mut next_value = 1u64;

    while let Some(t) = pick_active(&mut rng, &remaining) {
        remaining[t] -= 1;
        if rng.gen_bool(cfg.plain_frac) {
            let var = VarId(rng.gen_range(0..cfg.plain_vars) as u32);
            if rng.gen_bool(0.5) {
                plain_now[var.index()] += 1;
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Write {
                        var,
                        value: plain_now[var.index()],
                    },
                );
            } else {
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Read {
                        var,
                        value: plain_now[var.index()],
                    },
                );
            }
            continue;
        }
        let v = rng.gen_range(0..cfg.atomic_vars);
        let var = VarId(v as u32);
        if cfg.middle_sync_frac > 0.0 && atomic_stale[v] != 0 && rng.gen_bool(cfg.middle_sync_frac)
        {
            // Late reader: observe the stale (previous) value, forcing
            // the analysis to insert an ordering from a middle-of-trace
            // store to this load.
            trace.push(
                ThreadId::from_index(t),
                EventKind::AtomicLoad {
                    var,
                    order: MemOrder::Acquire,
                    value: atomic_stale[v],
                },
            );
            continue;
        }
        let roll: f64 = rng.gen();
        if roll < cfg.rmw_frac {
            let read = atomic_now[v];
            let write = next_value;
            next_value += 1;
            atomic_stale[v] = atomic_now[v];
            atomic_now[v] = write;
            trace.push(
                ThreadId::from_index(t),
                EventKind::AtomicRmw {
                    var,
                    order: MemOrder::AcqRel,
                    read,
                    write,
                },
            );
        } else if roll < cfg.rmw_frac + 0.45 {
            let order = if rng.gen_bool(cfg.release_frac) {
                MemOrder::Release
            } else {
                MemOrder::Relaxed
            };
            let value = next_value;
            next_value += 1;
            atomic_stale[v] = atomic_now[v];
            atomic_now[v] = value;
            trace.push(
                ThreadId::from_index(t),
                EventKind::AtomicStore { var, order, value },
            );
        } else {
            let order = if rng.gen_bool(cfg.release_frac) {
                MemOrder::Acquire
            } else {
                MemOrder::Relaxed
            };
            trace.push(
                ThreadId::from_index(t),
                EventKind::AtomicLoad {
                    var,
                    order,
                    value: atomic_now[v],
                },
            );
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let cfg = C11Cfg::default();
        assert_eq!(c11_program(&cfg).order(), c11_program(&cfg).order());
    }

    #[test]
    fn atomic_values_unique_and_rf_well_typed() {
        let t = c11_program(&C11Cfg::default());
        let mut writes: HashMap<u64, VarId> = HashMap::new();
        for (_, ev) in t.iter_order() {
            match ev.kind {
                EventKind::AtomicStore { var, value, .. } => {
                    assert!(writes.insert(value, var).is_none());
                }
                EventKind::AtomicRmw { var, write, .. } => {
                    assert!(writes.insert(write, var).is_none());
                }
                _ => {}
            }
        }
        for (_, ev) in t.iter_order() {
            match ev.kind {
                EventKind::AtomicLoad { var, value, .. } if value != 0 => {
                    assert_eq!(writes.get(&value), Some(&var));
                }
                EventKind::AtomicRmw { var, read, .. } if read != 0 => {
                    assert_eq!(writes.get(&read), Some(&var));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn middle_sync_produces_stale_reads() {
        let cfg = C11Cfg {
            middle_sync_frac: 0.4,
            plain_frac: 0.1,
            seed: 7,
            ..Default::default()
        };
        let t = c11_program(&cfg);
        // At least one load must observe a value that was already
        // overwritten when the load executed.
        let mut overwritten: std::collections::HashSet<u64> = Default::default();
        let mut current: HashMap<VarId, u64> = HashMap::new();
        let mut found_stale = false;
        for (_, ev) in t.iter_order() {
            match ev.kind {
                EventKind::AtomicStore { var, value, .. } => {
                    if let Some(old) = current.insert(var, value) {
                        overwritten.insert(old);
                    }
                }
                EventKind::AtomicRmw { var, write, .. } => {
                    if let Some(old) = current.insert(var, write) {
                        overwritten.insert(old);
                    }
                }
                EventKind::AtomicLoad { value, .. } if overwritten.contains(&value) => {
                    found_stale = true;
                }
                _ => {}
            }
        }
        assert!(found_stale, "expected at least one stale (late) read");
    }

    #[test]
    fn plain_accesses_present() {
        let t = c11_program(&C11Cfg::default());
        let plain = t
            .iter_order()
            .filter(|(_, e)| matches!(e.kind, EventKind::Read { .. } | EventKind::Write { .. }))
            .count();
        assert!(plain > 0);
    }
}
