//! Lock-hierarchy programs with inverted nested acquisitions — the
//! workload family of the deadlock prediction experiment (Table 2).

use super::{pick_active, rng_from_seed};
use crate::event::{EventKind, LockId, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use rand::Rng;

/// Configuration of [`lock_program`].
#[derive(Debug, Clone)]
pub struct LockProgramCfg {
    /// Number of threads.
    pub threads: usize,
    /// Nested lock blocks per thread.
    pub blocks_per_thread: usize,
    /// Number of locks.
    pub locks: usize,
    /// Probability that a nested block inverts the canonical lock
    /// order (creating a deadlock pattern).
    pub inversion_frac: f64,
    /// Probability that an inverted block is guarded by a common gate
    /// lock (making the pattern a false positive).
    pub guard_frac: f64,
    /// Number of shared variables touched inside sections.
    pub vars: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LockProgramCfg {
    fn default() -> Self {
        LockProgramCfg {
            threads: 4,
            blocks_per_thread: 40,
            locks: 6,
            inversion_frac: 0.2,
            guard_frac: 0.3,
            vars: 4,
            seed: 0,
        }
    }
}

/// Simulates a program whose threads take *nested* pairs of locks,
/// sometimes in inverted order (potential deadlocks), sometimes
/// additionally protected by a gate lock (benign inversions).
///
/// The observed execution itself is deadlock-free — blocks run to
/// completion under the random scheduler — which is exactly the
/// *prediction* setting of SeqCheck: the analysis must reorder the
/// trace to witness the deadlock.
pub fn lock_program(cfg: &LockProgramCfg) -> Trace {
    assert!(cfg.locks >= 2 && cfg.threads >= 1);
    let mut rng = rng_from_seed(cfg.seed);
    let mut trace = Trace::new(cfg.threads);
    let mut remaining = vec![cfg.blocks_per_thread; cfg.threads];
    let gate = LockId((cfg.locks - 1) as u32);
    let vars = cfg.vars.max(1);
    // Current value of each shared variable; reads observe the latest
    // write (possibly of another thread), which is what creates the
    // cross-thread reads-from structure the witness checks reason over.
    let mut value: Vec<u64> = vec![0; vars];
    let mut next_value = 0u64;

    while let Some(t) = pick_active(&mut rng, &remaining) {
        remaining[t] -= 1;
        // Pick an ordered pair of distinct non-gate locks.
        let inner_locks = (cfg.locks - 1).max(2);
        let a = rng.gen_range(0..inner_locks);
        let mut b = rng.gen_range(0..inner_locks);
        while b == a {
            b = rng.gen_range(0..inner_locks);
        }
        let (lo, hi) = (a.min(b) as u32, a.max(b) as u32);
        let invert = rng.gen_bool(cfg.inversion_frac);
        let guard = invert && rng.gen_bool(cfg.guard_frac);
        let (first, second) = if invert {
            (LockId(hi), LockId(lo))
        } else {
            (LockId(lo), LockId(hi))
        };
        if guard {
            trace.push(ThreadId::from_index(t), EventKind::Acquire { lock: gate });
        }
        trace.push(ThreadId::from_index(t), EventKind::Acquire { lock: first });
        // A write inside the outer section and a read of a (possibly
        // different) variable inside the inner one.
        let wvar = VarId(rng.gen_range(0..vars) as u32);
        next_value += 1;
        value[wvar.index()] = next_value;
        trace.push(
            ThreadId::from_index(t),
            EventKind::Write {
                var: wvar,
                value: next_value,
            },
        );
        trace.push(ThreadId::from_index(t), EventKind::Acquire { lock: second });
        // Mostly re-read the own write (thread-local rf); occasionally
        // read another variable, creating the cross-thread reads-from
        // structure without totally ordering the trace.
        let rvar = if rng.gen_bool(0.15) {
            VarId(rng.gen_range(0..vars) as u32)
        } else {
            wvar
        };
        trace.push(
            ThreadId::from_index(t),
            EventKind::Read {
                var: rvar,
                value: value[rvar.index()],
            },
        );
        trace.push(ThreadId::from_index(t), EventKind::Release { lock: second });
        trace.push(ThreadId::from_index(t), EventKind::Release { lock: first });
        if guard {
            trace.push(ThreadId::from_index(t), EventKind::Release { lock: gate });
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_formed() {
        let cfg = LockProgramCfg::default();
        let a = lock_program(&cfg);
        let b = lock_program(&cfg);
        assert_eq!(a.order(), b.order());
        for cs in a.critical_sections() {
            assert!(cs.release.is_some(), "all sections closed");
        }
    }

    #[test]
    fn produces_inversions() {
        // With inversion_frac 1.0 every block inverts; at least one
        // pair of threads must exhibit opposite nesting orders.
        let t = lock_program(&LockProgramCfg {
            inversion_frac: 0.5,
            guard_frac: 0.0,
            blocks_per_thread: 50,
            seed: 3,
            ..Default::default()
        });
        // Collect nesting pairs (outer, inner) per thread.
        let mut pairs = std::collections::HashSet::new();
        for tid in 0..t.num_threads() {
            let mut stack = Vec::new();
            for ev in t.events_of(csst_core::ThreadId(tid as u32)) {
                match ev.kind {
                    EventKind::Acquire { lock } => {
                        if let Some(&outer) = stack.last() {
                            pairs.insert((outer, lock));
                        }
                        stack.push(lock);
                    }
                    EventKind::Release { .. } => {
                        stack.pop();
                    }
                    _ => {}
                }
            }
        }
        let inverted = pairs
            .iter()
            .any(|&(a, b)| pairs.contains(&(b, a)) && a != b);
        assert!(inverted, "expected at least one lock-order inversion");
    }

    #[test]
    fn block_budget() {
        let cfg = LockProgramCfg {
            threads: 2,
            blocks_per_thread: 10,
            ..Default::default()
        };
        let t = lock_program(&cfg);
        // 6–8 events per block.
        assert!(t.total_events() >= 2 * 10 * 6);
        assert!(t.total_events() <= 2 * 10 * 8);
    }
}
