//! Seeded synthetic workload generators, one family per analysis of
//! the paper's evaluation (§5).
//!
//! The paper's datasets are traces recorded by (mostly closed-source)
//! tools from Java/C++ benchmark suites; they are not redistributable
//! and not available offline. Each generator here *simulates* an
//! execution of the corresponding program family under a seeded random
//! scheduler, producing traces with the structural properties the data
//! structures are sensitive to: thread count `k`, event count `n`,
//! cross-chain density `d`, update/query mix, and sharing patterns.
//! DESIGN.md §5 documents the substitution argument in full.
//!
//! All generators are deterministic in their seed.

mod alloc;
mod c11;
mod locks;
mod objects;
mod racy;
mod tso;

pub use alloc::{alloc_program, AllocProgramCfg};
pub use c11::{c11_program, C11Cfg};
pub use locks::{lock_program, LockProgramCfg};
pub use objects::{object_history, ObjectHistoryCfg};
pub use racy::{racy_program, RacyProgramCfg};
pub use tso::{tso_history, TsoCfg};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The RNG used by every generator (fast, seedable, portable).
pub type GenRng = SmallRng;

pub(crate) fn rng_from_seed(seed: u64) -> GenRng {
    SmallRng::seed_from_u64(seed)
}

/// Picks a thread index among those with remaining budget; returns
/// `None` when all budgets are exhausted.
pub(crate) fn pick_active(rng: &mut GenRng, remaining: &[usize]) -> Option<usize> {
    let live: Vec<usize> = remaining
        .iter()
        .enumerate()
        .filter(|(_, &r)| r > 0)
        .map(|(i, _)| i)
        .collect();
    if live.is_empty() {
        None
    } else {
        Some(live[rng.gen_range(0..live.len())])
    }
}
