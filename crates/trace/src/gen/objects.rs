//! Concurrent-object histories — the workload family of the
//! linearizability root-cause experiment (Table 7).
//!
//! Histories of `add`/`remove`/`contains` operations on a shared set.
//! The generator runs a *linearizable* execution (each operation takes
//! effect atomically at a random point inside its invoke/response
//! interval); the `violation` knob then corrupts one response,
//! producing the violating histories the root-cause analysis consumes.

use super::rng_from_seed;
use crate::event::{EventKind, Method, OpId};
use crate::trace::Trace;
use csst_core::ThreadId;
use rand::Rng;
use std::collections::HashSet;

/// Configuration of [`object_history`].
#[derive(Debug, Clone)]
pub struct ObjectHistoryCfg {
    /// Number of threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Keys are drawn from `0..key_range`.
    pub key_range: u64,
    /// If `true`, corrupt one response to inject a linearizability
    /// violation.
    pub violation: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ObjectHistoryCfg {
    fn default() -> Self {
        ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 30,
            key_range: 6,
            violation: false,
            seed: 0,
        }
    }
}

/// Generates a history of set operations with overlapping intervals.
///
/// Each operation is an `Invoke` event followed (possibly after other
/// threads' events) by a `Response` event on the same thread. The
/// results are those of a legal linearization; with `violation: true`
/// exactly one response is flipped.
pub fn object_history(cfg: &ObjectHistoryCfg) -> Trace {
    assert!(cfg.threads >= 1 && cfg.key_range >= 1);
    let mut rng = rng_from_seed(cfg.seed);
    let mut trace = Trace::new(cfg.threads);
    let mut set: HashSet<u64> = HashSet::new();

    #[derive(Debug, Clone, Copy)]
    enum Phase {
        Idle,
        /// Invoked but effect not yet applied.
        Pending(OpId, Method, u64),
        /// Effect applied; result recorded, response not yet emitted.
        Effected(OpId, u64),
    }
    let mut phase = vec![Phase::Idle; cfg.threads];
    let mut remaining = vec![cfg.ops_per_thread; cfg.threads];
    let mut next_op = 0u32;
    let mut responses: Vec<csst_core::NodeId> = Vec::new();

    loop {
        let live: Vec<usize> = (0..cfg.threads)
            .filter(|&t| remaining[t] > 0 || !matches!(phase[t], Phase::Idle))
            .collect();
        if live.is_empty() {
            break;
        }
        let t = live[rng.gen_range(0..live.len())];
        match phase[t] {
            Phase::Idle => {
                let method = match rng.gen_range(0..3) {
                    0 => Method::Add,
                    1 => Method::Remove,
                    _ => Method::Contains,
                };
                let arg = rng.gen_range(0..cfg.key_range);
                let op = OpId(next_op);
                next_op += 1;
                remaining[t] -= 1;
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Invoke { op, method, arg },
                );
                phase[t] = Phase::Pending(op, method, arg);
            }
            Phase::Pending(op, method, arg) => {
                // The linearization point: apply the effect atomically.
                let result = match method {
                    Method::Add => set.insert(arg) as u64,
                    Method::Remove => set.remove(&arg) as u64,
                    Method::Contains => set.contains(&arg) as u64,
                };
                phase[t] = Phase::Effected(op, result);
            }
            Phase::Effected(op, result) => {
                let id = trace.push(ThreadId::from_index(t), EventKind::Response { op, result });
                responses.push(id);
                phase[t] = Phase::Idle;
            }
        }
    }

    if cfg.violation && !responses.is_empty() {
        // Flip one response chosen deterministically from the seed.
        let victim = responses[rng.gen_range(0..responses.len())];
        let flipped = match *trace.kind(victim) {
            EventKind::Response { op, result } => EventKind::Response {
                op,
                result: 1 - (result & 1),
            },
            _ => unreachable!("responses list holds Response events"),
        };
        // Rebuild the trace with the flipped event (Trace is append-only).
        let mut out = Trace::new(cfg.threads);
        for (id, ev) in trace.iter_order() {
            out.push(id.thread, if id == victim { flipped } else { ev.kind });
        }
        return out;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn intervals_well_formed(t: &Trace) {
        // Every op has exactly one invoke and one response, on the same
        // thread, invoke first.
        let mut inv: HashMap<OpId, csst_core::NodeId> = HashMap::new();
        let mut res: HashMap<OpId, csst_core::NodeId> = HashMap::new();
        for (id, ev) in t.iter_order() {
            match ev.kind {
                EventKind::Invoke { op, .. } => {
                    assert!(inv.insert(op, id).is_none());
                }
                EventKind::Response { op, .. } => {
                    assert!(res.insert(op, id).is_none());
                }
                _ => {}
            }
        }
        assert_eq!(inv.len(), res.len());
        for (op, i) in &inv {
            let r = res[op];
            assert_eq!(i.thread, r.thread);
            assert!(t.trace_pos(*i) < t.trace_pos(r));
        }
    }

    #[test]
    fn clean_history_is_well_formed() {
        let t = object_history(&ObjectHistoryCfg::default());
        intervals_well_formed(&t);
        assert_eq!(
            t.iter_order()
                .filter(|(_, e)| matches!(e.kind, EventKind::Invoke { .. }))
                .count(),
            90
        );
    }

    #[test]
    fn violation_flips_exactly_one_response() {
        let clean = object_history(&ObjectHistoryCfg {
            seed: 5,
            ..Default::default()
        });
        let bad = object_history(&ObjectHistoryCfg {
            seed: 5,
            violation: true,
            ..Default::default()
        });
        intervals_well_formed(&bad);
        assert_eq!(clean.order(), bad.order());
        let mut diffs = 0;
        for (id, ev) in clean.iter_order() {
            if ev.kind != *bad.kind(id) {
                diffs += 1;
                assert!(matches!(ev.kind, EventKind::Response { .. }));
            }
        }
        assert_eq!(diffs, 1);
    }

    #[test]
    fn deterministic() {
        let cfg = ObjectHistoryCfg::default();
        let a = object_history(&cfg);
        let b = object_history(&cfg);
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn intervals_overlap_across_threads() {
        // With several threads running concurrently, some operation
        // must be invoked while another is pending.
        let t = object_history(&ObjectHistoryCfg {
            threads: 4,
            ops_per_thread: 20,
            seed: 2,
            ..Default::default()
        });
        let mut open = 0usize;
        let mut max_open = 0usize;
        for (_, ev) in t.iter_order() {
            match ev.kind {
                EventKind::Invoke { .. } => {
                    open += 1;
                    max_open = max_open.max(open);
                }
                EventKind::Response { .. } => open -= 1,
                _ => {}
            }
        }
        assert!(max_open >= 2, "no concurrency in the history");
    }
}
