//! Racy shared-memory programs — the workload family of the race
//! prediction (Table 1) and, with different parameters, the
//! use-after-free query generation (Table 5) experiments.

use super::{pick_active, rng_from_seed};
use crate::event::{EventKind, LockId, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use rand::Rng;

/// Configuration of [`racy_program`].
#[derive(Debug, Clone)]
pub struct RacyProgramCfg {
    /// Number of threads.
    pub threads: usize,
    /// Events generated per thread (approximately; lock blocks round up).
    pub events_per_thread: usize,
    /// Number of shared variables.
    pub vars: usize,
    /// Number of locks.
    pub locks: usize,
    /// Probability that an access block is protected by a lock.
    pub lock_frac: f64,
    /// Probability that an access is a write.
    pub write_frac: f64,
    /// Probability that an access touches a *shared* variable; the
    /// rest go to a thread-private variable. Real programs are mostly
    /// thread-local; this controls how sparse the cross-thread part of
    /// the partial order is (the paper's `q` column).
    pub shared_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RacyProgramCfg {
    fn default() -> Self {
        RacyProgramCfg {
            threads: 4,
            events_per_thread: 200,
            vars: 8,
            locks: 2,
            lock_frac: 0.6,
            write_frac: 0.4,
            shared_frac: 1.0,
            seed: 0,
        }
    }
}

/// Simulates a sequentially consistent execution of a lock-based
/// program with occasional unprotected shared accesses (the race
/// candidates).
///
/// Each scheduler step runs one *block* of a random live thread: either
/// a critical section (acquire, 1–3 accesses, release) or a single
/// unprotected access. Writes to a variable store a per-variable
/// monotone counter; reads observe the current value, so the trace is
/// consistent by construction.
pub fn racy_program(cfg: &RacyProgramCfg) -> Trace {
    assert!(cfg.threads >= 1 && cfg.vars >= 1);
    let mut rng = rng_from_seed(cfg.seed);
    let mut trace = Trace::new(cfg.threads);
    let mut remaining = vec![cfg.events_per_thread; cfg.threads];
    // Shared variables occupy ids 0..vars; each thread additionally
    // owns the private variable `vars + t`.
    let mut value: Vec<u64> = vec![0; cfg.vars + cfg.threads];

    while let Some(t) = pick_active(&mut rng, &remaining) {
        let protected = cfg.locks > 0 && rng.gen_bool(cfg.lock_frac);
        let accesses = rng.gen_range(1..=3usize);
        let lock = LockId(rng.gen_range(0..cfg.locks.max(1)) as u32);
        if protected {
            trace.push(ThreadId::from_index(t), EventKind::Acquire { lock });
        }
        for _ in 0..accesses {
            let var = if rng.gen_bool(cfg.shared_frac) {
                VarId(rng.gen_range(0..cfg.vars) as u32)
            } else {
                VarId((cfg.vars + t) as u32)
            };
            if rng.gen_bool(cfg.write_frac) {
                value[var.index()] += 1;
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Write {
                        var,
                        value: value[var.index()],
                    },
                );
            } else {
                trace.push(
                    ThreadId::from_index(t),
                    EventKind::Read {
                        var,
                        value: value[var.index()],
                    },
                );
            }
        }
        if protected {
            trace.push(ThreadId::from_index(t), EventKind::Release { lock });
        }
        remaining[t] = remaining[t].saturating_sub(accesses + if protected { 2 } else { 0 });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind as K;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RacyProgramCfg::default();
        let a = racy_program(&cfg);
        let b = racy_program(&cfg);
        assert_eq!(a.order(), b.order());
        let c = racy_program(&RacyProgramCfg { seed: 1, ..cfg });
        assert_ne!(a.order(), c.order());
    }

    #[test]
    fn roughly_matches_budget() {
        let cfg = RacyProgramCfg {
            threads: 3,
            events_per_thread: 100,
            ..Default::default()
        };
        let t = racy_program(&cfg);
        assert_eq!(t.num_threads(), 3);
        let total = t.total_events();
        assert!((300..=3 * 105).contains(&total), "total {total}");
    }

    #[test]
    fn locks_are_well_nested() {
        let t = racy_program(&RacyProgramCfg::default());
        for cs in t.critical_sections() {
            let rel = cs.release.expect("all sections closed");
            assert_eq!(rel.thread, cs.thread);
            assert!(cs.acquire.pos < rel.pos);
        }
    }

    #[test]
    fn reads_observe_last_write() {
        let t = racy_program(&RacyProgramCfg::default());
        let mut current: std::collections::HashMap<VarId, u64> = Default::default();
        for (_, ev) in t.iter_order() {
            match ev.kind {
                K::Write { var, value } => {
                    current.insert(var, value);
                }
                K::Read { var, value } => {
                    assert_eq!(current.get(&var).copied().unwrap_or(0), value);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn unprotected_when_lock_frac_zero() {
        let t = racy_program(&RacyProgramCfg {
            lock_frac: 0.0,
            ..Default::default()
        });
        assert!(t.critical_sections().is_empty());
    }
}
