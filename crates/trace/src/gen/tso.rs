//! x86-TSO histories — the workload family of the consistency checking
//! experiment (Table 4).
//!
//! The generator *runs* a TSO abstract machine (per-thread FIFO store
//! buffers over a shared memory) under a seeded random scheduler, so
//! every produced history is TSO-consistent by construction. Loads can
//! observe either their own buffered stores (store-to-load forwarding)
//! or main memory; buffer flushes happen at random points. Every write
//! carries a globally unique value so the reads-from map is recoverable
//! from values alone — the standard assumption of consistency checkers.

use super::{pick_active, rng_from_seed};
use crate::event::{EventKind, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use rand::Rng;
use std::collections::VecDeque;

/// Configuration of [`tso_history`].
#[derive(Debug, Clone)]
pub struct TsoCfg {
    /// Number of threads.
    pub threads: usize,
    /// Loads/stores per thread.
    pub events_per_thread: usize,
    /// Number of shared variables.
    pub vars: usize,
    /// Probability that a scheduler step flushes a buffered store
    /// instead of issuing a new operation.
    pub flush_frac: f64,
    /// Probability that an issued operation is a store.
    pub store_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TsoCfg {
    fn default() -> Self {
        TsoCfg {
            threads: 4,
            events_per_thread: 200,
            vars: 6,
            flush_frac: 0.3,
            store_frac: 0.5,
            seed: 0,
        }
    }
}

/// Runs the TSO abstract machine and records the per-thread
/// instruction streams (program order) as a trace of plain
/// reads/writes. Value `0` denotes the initial value of every
/// variable; written values start at `1` and are globally unique.
pub fn tso_history(cfg: &TsoCfg) -> Trace {
    assert!(cfg.threads >= 1 && cfg.vars >= 1);
    let mut rng = rng_from_seed(cfg.seed);
    let mut trace = Trace::new(cfg.threads);
    let mut memory: Vec<u64> = vec![0; cfg.vars];
    // Store buffers: FIFO of (var, value).
    let mut buffers: Vec<VecDeque<(usize, u64)>> = vec![VecDeque::new(); cfg.threads];
    let mut remaining = vec![cfg.events_per_thread; cfg.threads];
    let mut next_value = 1u64;

    loop {
        // Optionally flush a random non-empty buffer.
        let non_empty: Vec<usize> = (0..cfg.threads)
            .filter(|&t| !buffers[t].is_empty())
            .collect();
        if !non_empty.is_empty() && rng.gen_bool(cfg.flush_frac) {
            let t = non_empty[rng.gen_range(0..non_empty.len())];
            let (var, val) = buffers[t].pop_front().expect("non-empty buffer");
            memory[var] = val;
            continue;
        }
        let Some(t) = pick_active(&mut rng, &remaining) else {
            break;
        };
        remaining[t] -= 1;
        let var = rng.gen_range(0..cfg.vars);
        if rng.gen_bool(cfg.store_frac) {
            let value = next_value;
            next_value += 1;
            buffers[t].push_back((var, value));
            trace.push(
                ThreadId::from_index(t),
                EventKind::Write {
                    var: VarId(var as u32),
                    value,
                },
            );
        } else {
            // Store-to-load forwarding: latest buffered store to `var`
            // from this thread wins; otherwise main memory.
            let value = buffers[t]
                .iter()
                .rev()
                .find(|&&(v, _)| v == var)
                .map(|&(_, val)| val)
                .unwrap_or(memory[var]);
            trace.push(
                ThreadId::from_index(t),
                EventKind::Read {
                    var: VarId(var as u32),
                    value,
                },
            );
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic() {
        let cfg = TsoCfg::default();
        assert_eq!(tso_history(&cfg).order(), tso_history(&cfg).order());
    }

    #[test]
    fn values_are_unique_per_write() {
        let t = tso_history(&TsoCfg::default());
        let mut seen = std::collections::HashSet::new();
        for (_, ev) in t.iter_order() {
            if let EventKind::Write { value, .. } = ev.kind {
                assert!(seen.insert(value), "duplicate written value {value}");
                assert!(value > 0);
            }
        }
    }

    #[test]
    fn reads_observe_some_write_to_same_var_or_initial() {
        let t = tso_history(&TsoCfg::default());
        let mut writes: HashMap<u64, VarId> = HashMap::new();
        for (_, ev) in t.iter_order() {
            if let EventKind::Write { var, value } = ev.kind {
                writes.insert(value, var);
            }
        }
        for (_, ev) in t.iter_order() {
            if let EventKind::Read { var, value } = ev.kind {
                if value != 0 {
                    assert_eq!(writes.get(&value), Some(&var), "rf variable mismatch");
                }
            }
        }
    }

    #[test]
    fn event_budget_respected() {
        let cfg = TsoCfg {
            threads: 3,
            events_per_thread: 50,
            ..Default::default()
        };
        let t = tso_history(&cfg);
        assert_eq!(t.total_events(), 150);
        for tid in 0..3 {
            assert_eq!(t.thread_len(csst_core::ThreadId(tid)), 50);
        }
    }

    #[test]
    fn forwarding_lets_threads_read_unflushed_stores() {
        // With flush_frac 0 nothing ever reaches memory, so any read of
        // a non-zero value must be forwarded from the own buffer.
        let t = tso_history(&TsoCfg {
            flush_frac: 0.0,
            seed: 42,
            ..Default::default()
        });
        let mut writer_of: HashMap<u64, csst_core::ThreadId> = HashMap::new();
        for (id, ev) in t.iter_order() {
            match ev.kind {
                EventKind::Write { value, .. } => {
                    writer_of.insert(value, id.thread);
                }
                EventKind::Read { value, .. } if value != 0 => {
                    assert_eq!(writer_of[&value], id.thread, "forwarded from own buffer");
                }
                _ => {}
            }
        }
    }
}
