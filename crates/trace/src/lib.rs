//! # csst-trace — concurrent execution traces for the CSSTs reproduction
//!
//! The CSSTs paper evaluates its data structure inside seven dynamic
//! concurrency analyses, each of which consumes *traces*: per-thread
//! sequences of events (reads/writes, lock operations, allocations,
//! C11 atomics, method invocations, …) observed from a concurrent
//! execution.
//!
//! This crate provides the trace substrate those analyses run on:
//!
//! * [`Event`]/[`EventKind`] — the event model, covering every event
//!   class the paper's analyses interpret;
//! * [`Trace`] — the container: per-thread chains plus the observed
//!   total order, with derived views (reads-from map, critical
//!   sections, per-variable access lists);
//! * [`TraceBuilder`] — ergonomic construction with name interning;
//! * [`text`] — a line-based interchange format (parser + writer) with
//!   full event coverage, plus [`rapid`], a compatibility reader/writer
//!   for the RAPID/STD format the paper's tools exchange;
//! * [`gen`] — seeded synthetic workload generators, one family per
//!   analysis (racy programs, lock hierarchies, allocator lifetimes,
//!   x86-TSO histories, C11 atomics, concurrent-object histories).
//!   These replace the paper's closed-source tool datasets; see
//!   DESIGN.md §5 for the substitution argument.
//! * [`sc`] — linearization helpers (Kahn's algorithm over chain DAGs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod builder;
pub mod event;
pub mod gen;
pub mod rapid;
pub mod sc;
pub mod text;
pub mod trace;

pub use builder::TraceBuilder;
pub use event::{Event, EventKind, LockId, MemOrder, Method, ObjId, OpId, VarId};
pub use trace::{CriticalSection, Trace, VarAccesses};

pub use csst_core::{NodeId, ThreadId};
