//! Compatibility reader/writer for the RAPID/STD trace format.
//!
//! The tools the paper evaluates (M2, SeqCheck, and the RAPID family of
//! predictive analyses) exchange traces in a line format of the shape
//!
//! ```text
//! T0|w(V1)|100
//! T1|r(V1)|101
//! T0|acq(L2)|102
//! T0|rel(L2)|103
//! T0|fork(T1)|104
//! T0|join(T1)|105
//! ```
//!
//! `<thread>|<op>(<operand>)|<aux>` — thread, operation with operand,
//! and an auxiliary field (location/line id) that this reader accepts
//! and ignores (it may be absent). Thread, variable, and lock names are
//! arbitrary identifiers, interned in order of first appearance.
//!
//! RAPID traces carry no values; reads are given value 0 and writes a
//! running counter, so [`Trace::reads_from`] (which pairs each read
//! with the latest preceding write in trace order) behaves identically
//! to the tools' own last-writer semantics.

use crate::event::{EventKind, LockId, VarId};
use crate::text::ParseError;
use crate::trace::Trace;
use csst_core::ThreadId;
use std::collections::HashMap;
use std::fmt::Write as _;

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

#[derive(Default)]
struct Interner {
    map: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        let next = self.map.len() as u32;
        *self.map.entry(name.to_owned()).or_insert(next)
    }
}

/// Parses a RAPID/STD-format trace.
///
/// Unknown operations (e.g. `begin`, `end`, branch events emitted by
/// some tools) are skipped. The auxiliary third field is optional.
///
/// # Errors
///
/// Returns a [`ParseError`] for structurally malformed lines.
pub fn parse(input: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::new(0);
    let mut threads = Interner::default();
    let mut vars = Interner::default();
    let mut locks = Interner::default();
    let mut next_value = 1u64;

    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
            continue;
        }
        let mut parts = line.split('|');
        let thread = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| err(lineno, "missing thread field"))?
            .trim();
        let op = parts
            .next()
            .ok_or_else(|| err(lineno, "missing operation field"))?
            .trim();
        // Third field (location) is optional and ignored.
        let t = ThreadId(threads.intern(thread));
        let (name, operand) = match (op.find('('), op.ends_with(')')) {
            (Some(i), true) => (&op[..i], op[i + 1..op.len() - 1].trim()),
            _ => return Err(err(lineno, format!("malformed operation `{op}`"))),
        };
        let kind = match name {
            "r" => EventKind::Read {
                var: VarId(vars.intern(operand)),
                value: 0,
            },
            "w" => {
                let value = next_value;
                next_value += 1;
                EventKind::Write {
                    var: VarId(vars.intern(operand)),
                    value,
                }
            }
            "acq" => EventKind::Acquire {
                lock: LockId(locks.intern(operand)),
            },
            "rel" => EventKind::Release {
                lock: LockId(locks.intern(operand)),
            },
            "fork" => EventKind::Fork {
                child: ThreadId(threads.intern(operand)),
            },
            "join" => EventKind::Join {
                child: ThreadId(threads.intern(operand)),
            },
            // Events some RAPID producers emit that carry no ordering
            // information for our analyses.
            "begin" | "end" | "branch" | "enter" | "exit" => continue,
            other => return Err(err(lineno, format!("unknown operation `{other}`"))),
        };
        trace.push(t, kind);
    }
    Ok(trace)
}

/// Serializes the lock/access/fork structure of a trace in RAPID
/// format (values and non-RAPID events are dropped; the auxiliary
/// field is the trace position).
pub fn write(trace: &Trace) -> String {
    let mut out = String::new();
    for (id, ev) in trace.iter_order() {
        let t = id.thread.0;
        let pos = ev.trace_pos;
        match ev.kind {
            EventKind::Read { var, .. } => {
                let _ = writeln!(out, "T{t}|r(V{})|{pos}", var.0);
            }
            EventKind::Write { var, .. } => {
                let _ = writeln!(out, "T{t}|w(V{})|{pos}", var.0);
            }
            EventKind::Acquire { lock } => {
                let _ = writeln!(out, "T{t}|acq(L{})|{pos}", lock.0);
            }
            EventKind::Release { lock } => {
                let _ = writeln!(out, "T{t}|rel(L{})|{pos}", lock.0);
            }
            EventKind::Fork { child } => {
                let _ = writeln!(out, "T{t}|fork(T{})|{pos}", child.0);
            }
            EventKind::Join { child } => {
                let _ = writeln!(out, "T{t}|join(T{})|{pos}", child.0);
            }
            _ => {} // atomics/heap/history events have no RAPID form
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{racy_program, RacyProgramCfg};

    const SAMPLE: &str = "\
T0|w(V1)|100
T1|r(V1)|101
T0|acq(L2)|102
T0|rel(L2)|103
T0|fork(T1)|104
T1|begin()|105
T1|end()|106
T0|join(T1)|107
";

    #[test]
    fn parses_rapid_sample() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.total_events(), 6, "begin/end are skipped");
        let rf = t.reads_from();
        assert_eq!(rf.len(), 1, "the read pairs with the preceding write");
    }

    #[test]
    fn aux_field_is_optional_and_names_are_free_form() {
        let t = parse("main|w(obj.field)\nworker|r(obj.field)\n").unwrap();
        assert_eq!(t.num_threads(), 2);
        assert_eq!(t.reads_from().len(), 1);
    }

    #[test]
    fn error_reporting() {
        let e = parse("T0|zap(V1)|3").unwrap_err();
        assert!(e.message.contains("unknown operation"));
        assert_eq!(e.line, 1);
        let e = parse("T0|w V1|3").unwrap_err();
        assert!(e.message.contains("malformed"));
        let e = parse("|w(V1)|3").unwrap_err();
        assert!(e.message.contains("thread"));
    }

    #[test]
    fn roundtrip_of_lock_race_structure() {
        let orig = racy_program(&RacyProgramCfg {
            threads: 4,
            events_per_thread: 60,
            seed: 5,
            ..Default::default()
        });
        // Identifiers are interned by first appearance, so one round
        // trip renames threads/vars/locks; the *structure* (event
        // count, rf pairing count, critical sections) is preserved,
        // and a second round trip is the identity on the normalized
        // trace.
        let once = parse(&write(&orig)).unwrap();
        assert_eq!(orig.total_events(), once.total_events());
        assert_eq!(orig.num_threads(), once.num_threads());
        assert_eq!(orig.reads_from().len(), once.reads_from().len());
        assert_eq!(
            orig.critical_sections().len(),
            once.critical_sections().len()
        );
        let twice = parse(&write(&once)).unwrap();
        assert_eq!(once.order(), twice.order());
        assert_eq!(once.reads_from(), twice.reads_from());
        for (id, ev) in once.iter_order() {
            // Write values are re-synthesized in trace order, so the
            // full kinds coincide after the first normalization.
            assert_eq!(&ev.kind, twice.kind(id));
        }
    }

    /// Counts conflicting cross-thread write pairs that no common lock
    /// protects — a miniature race check sufficient for format tests
    /// (the full analyses live in `csst-analyses`).
    fn unprotected_write_pairs(trace: &Trace) -> usize {
        let acc = trace.var_accesses();
        let mut races = 0;
        for a in acc.values() {
            for (i, &w1) in a.writes.iter().enumerate() {
                for &w2 in &a.writes[i + 1..] {
                    if w1.thread != w2.thread {
                        let l1 = trace.locks_held_at(w1);
                        let l2 = trace.locks_held_at(w2);
                        if !l1.iter().any(|l| l2.contains(l)) {
                            races += 1;
                        }
                    }
                }
            }
        }
        races
    }

    #[test]
    fn analyses_run_on_rapid_input() {
        let trace = parse("T0|w(Vx)|1\nT1|w(Vx)|2\n").unwrap();
        assert_eq!(
            unprotected_write_pairs(&trace),
            1,
            "the two unprotected writes race"
        );
    }
}
