//! Linearization helpers for chain DAGs.
//!
//! Several analyses (deadlock and race prediction in particular) end by
//! *linearizing* the constructed partial order into a witness
//! reordering. This module implements Kahn's algorithm specialized to
//! chain DAGs: per-chain cursors plus the cross-chain edges, `O(n + m)`
//! instead of generic toposort overhead.

use csst_core::{NodeId, ThreadId};
use std::collections::HashMap;

/// Computes a linear extension of the partial order given by the chain
/// lengths (program order) plus the cross-chain `edges`, or `None` if
/// the relation is cyclic.
///
/// ```
/// use csst_trace::sc::linearize;
/// use csst_core::NodeId;
///
/// let order = linearize(&[2, 2], &[(NodeId::new(1, 0), NodeId::new(0, 1))]).unwrap();
/// let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
/// assert!(pos(NodeId::new(1, 0)) < pos(NodeId::new(0, 1)));
/// assert_eq!(order.len(), 4);
/// ```
pub fn linearize(chain_lens: &[usize], edges: &[(NodeId, NodeId)]) -> Option<Vec<NodeId>> {
    let k = chain_lens.len();
    let total: usize = chain_lens.iter().sum();
    // Remaining cross-edge in-degree per node.
    let mut indeg: HashMap<NodeId, usize> = HashMap::new();
    // Cross edges grouped by source.
    let mut out: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &(u, v) in edges {
        *indeg.entry(v).or_insert(0) += 1;
        out.entry(u).or_default().push(v);
    }
    let mut cursor = vec![0usize; k]; // next unscheduled position per chain
    let mut order = Vec::with_capacity(total);
    let mut progress = true;
    while order.len() < total {
        if !progress {
            return None; // every chain head is blocked: a cycle
        }
        progress = false;
        for t in 0..k {
            // Schedule as much of chain t as currently unblocked.
            while cursor[t] < chain_lens[t] {
                let node = NodeId::new(ThreadId(t as u32), cursor[t] as u32);
                if indeg.get(&node).copied().unwrap_or(0) > 0 {
                    break;
                }
                cursor[t] += 1;
                progress = true;
                if let Some(targets) = out.remove(&node) {
                    for v in targets {
                        if let Some(d) = indeg.get_mut(&v) {
                            *d -= 1;
                        }
                    }
                }
                order.push(node);
            }
        }
    }
    Some(order)
}

/// `true` if the chain DAG with the given cross edges is acyclic.
pub fn is_acyclic(chain_lens: &[usize], edges: &[(NodeId, NodeId)]) -> bool {
    linearize(chain_lens, edges).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(t: u32, i: u32) -> NodeId {
        NodeId::new(t, i)
    }

    #[test]
    fn empty_graph() {
        assert_eq!(linearize(&[], &[]), Some(vec![]));
        let order = linearize(&[3], &[]).unwrap();
        assert_eq!(order, vec![n(0, 0), n(0, 1), n(0, 2)]);
    }

    #[test]
    fn respects_cross_edges() {
        let edges = vec![(n(0, 1), n(1, 0)), (n(1, 1), n(2, 0))];
        let order = linearize(&[2, 2, 1], &edges).unwrap();
        let pos = |x: NodeId| order.iter().position(|&y| y == x).unwrap();
        assert_eq!(order.len(), 5);
        for t in 0..3u32 {
            for i in 1..2u32 {
                if pos(n(t, i - 1)) >= order.len() {
                    continue;
                }
            }
        }
        assert!(pos(n(0, 1)) < pos(n(1, 0)));
        assert!(pos(n(1, 1)) < pos(n(2, 0)));
        assert!(pos(n(0, 0)) < pos(n(0, 1)));
        assert!(pos(n(1, 0)) < pos(n(1, 1)));
    }

    #[test]
    fn detects_cycles() {
        // 0@1 → 1@0 and 1@1 → 0@0: cross edges forming a cycle through
        // program order.
        let edges = vec![(n(0, 1), n(1, 0)), (n(1, 1), n(0, 0))];
        assert_eq!(linearize(&[2, 2], &edges), None);
        assert!(!is_acyclic(&[2, 2], &edges));
        // Removing one edge breaks the cycle.
        assert!(is_acyclic(&[2, 2], &edges[..1]));
    }

    #[test]
    fn direct_two_cycle() {
        let edges = vec![(n(0, 0), n(1, 0)), (n(1, 0), n(0, 0))];
        assert!(!is_acyclic(&[1, 1], &edges));
    }

    #[test]
    fn parallel_edges_ok() {
        let edges = vec![(n(0, 0), n(1, 1)), (n(0, 0), n(1, 1))];
        let order = linearize(&[1, 2], &edges).unwrap();
        let pos = |x: NodeId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(n(0, 0)) < pos(n(1, 1)));
    }
}
