//! A line-based trace interchange format.
//!
//! One event per line, in observed trace order:
//!
//! ```text
//! # comments and blank lines are skipped
//! t0 w x0 1
//! t1 r x0 1
//! t0 acq l0
//! t0 rel l0
//! t0 fork t1
//! t1 join t0
//! t0 alloc o0
//! t0 free o0
//! t1 deref o0 w
//! t0 aload x1 acq 7
//! t0 astore x1 rel 8
//! t0 armw x1 acqrel 7 8
//! t0 fence sc
//! t0 inv op0 add 5
//! t0 res op0 1
//! ```
//!
//! The identifiers reuse the `Display` forms of the id types (`t`, `x`,
//! `l`, `o`, `op` prefixes). This mirrors the STD/RAPID-style formats
//! consumed by the tools the paper evaluates.

use crate::event::{EventKind, LockId, MemOrder, Method, ObjId, OpId, VarId};
use crate::trace::Trace;
use csst_core::ThreadId;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_id(tok: &str, prefix: &str, line: usize) -> Result<u32, ParseError> {
    tok.strip_prefix(prefix)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(line, format!("expected {prefix}<n>, got `{tok}`")))
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    tok.parse()
        .map_err(|_| err(line, format!("expected integer, got `{tok}`")))
}

/// Parses a trace from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first malformed line.
pub fn parse(input: &str) -> Result<Trace, ParseError> {
    let mut trace = Trace::new(0);
    for (lineno, raw) in input.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        if toks.len() < 2 {
            return Err(err(lineno, "expected `<thread> <op> [args...]`"));
        }
        let t = ThreadId(parse_id(toks[0], "t", lineno)?);
        let need = |n: usize| -> Result<(), ParseError> {
            if toks.len() != n {
                Err(err(
                    lineno,
                    format!("op `{}` takes {} argument(s)", toks[1], n - 2),
                ))
            } else {
                Ok(())
            }
        };
        let kind = match toks[1] {
            "r" => {
                need(4)?;
                EventKind::Read {
                    var: VarId(parse_id(toks[2], "x", lineno)?),
                    value: parse_u64(toks[3], lineno)?,
                }
            }
            "w" => {
                need(4)?;
                EventKind::Write {
                    var: VarId(parse_id(toks[2], "x", lineno)?),
                    value: parse_u64(toks[3], lineno)?,
                }
            }
            "acq" => {
                need(3)?;
                EventKind::Acquire {
                    lock: LockId(parse_id(toks[2], "l", lineno)?),
                }
            }
            "rel" => {
                need(3)?;
                EventKind::Release {
                    lock: LockId(parse_id(toks[2], "l", lineno)?),
                }
            }
            "fork" => {
                need(3)?;
                EventKind::Fork {
                    child: ThreadId(parse_id(toks[2], "t", lineno)?),
                }
            }
            "join" => {
                need(3)?;
                EventKind::Join {
                    child: ThreadId(parse_id(toks[2], "t", lineno)?),
                }
            }
            "alloc" => {
                need(3)?;
                EventKind::Alloc {
                    obj: ObjId(parse_id(toks[2], "o", lineno)?),
                }
            }
            "free" => {
                need(3)?;
                EventKind::Free {
                    obj: ObjId(parse_id(toks[2], "o", lineno)?),
                }
            }
            "deref" => {
                need(4)?;
                EventKind::Deref {
                    obj: ObjId(parse_id(toks[2], "o", lineno)?),
                    write: match toks[3] {
                        "w" => true,
                        "r" => false,
                        other => return Err(err(lineno, format!("expected r|w, got `{other}`"))),
                    },
                }
            }
            "aload" => {
                need(5)?;
                EventKind::AtomicLoad {
                    var: VarId(parse_id(toks[2], "x", lineno)?),
                    order: MemOrder::parse(toks[3])
                        .ok_or_else(|| err(lineno, format!("bad memory order `{}`", toks[3])))?,
                    value: parse_u64(toks[4], lineno)?,
                }
            }
            "astore" => {
                need(5)?;
                EventKind::AtomicStore {
                    var: VarId(parse_id(toks[2], "x", lineno)?),
                    order: MemOrder::parse(toks[3])
                        .ok_or_else(|| err(lineno, format!("bad memory order `{}`", toks[3])))?,
                    value: parse_u64(toks[4], lineno)?,
                }
            }
            "armw" => {
                need(6)?;
                EventKind::AtomicRmw {
                    var: VarId(parse_id(toks[2], "x", lineno)?),
                    order: MemOrder::parse(toks[3])
                        .ok_or_else(|| err(lineno, format!("bad memory order `{}`", toks[3])))?,
                    read: parse_u64(toks[4], lineno)?,
                    write: parse_u64(toks[5], lineno)?,
                }
            }
            "fence" => {
                need(3)?;
                EventKind::Fence {
                    order: MemOrder::parse(toks[2])
                        .ok_or_else(|| err(lineno, format!("bad memory order `{}`", toks[2])))?,
                }
            }
            "inv" => {
                need(5)?;
                EventKind::Invoke {
                    op: OpId(parse_id(toks[2], "op", lineno)?),
                    method: Method::parse(toks[3])
                        .ok_or_else(|| err(lineno, format!("bad method `{}`", toks[3])))?,
                    arg: parse_u64(toks[4], lineno)?,
                }
            }
            "res" => {
                need(4)?;
                EventKind::Response {
                    op: OpId(parse_id(toks[2], "op", lineno)?),
                    result: parse_u64(toks[3], lineno)?,
                }
            }
            other => return Err(err(lineno, format!("unknown op `{other}`"))),
        };
        trace.push(t, kind);
    }
    Ok(trace)
}

/// Serializes a trace into the textual form accepted by [`parse`].
pub fn write(trace: &Trace) -> String {
    let mut out = String::new();
    for (id, ev) in trace.iter_order() {
        let t = id.thread;
        match ev.kind {
            EventKind::Read { var, value } => writeln!(out, "t{} r {var} {value}", t.0),
            EventKind::Write { var, value } => writeln!(out, "t{} w {var} {value}", t.0),
            EventKind::Acquire { lock } => writeln!(out, "t{} acq {lock}", t.0),
            EventKind::Release { lock } => writeln!(out, "t{} rel {lock}", t.0),
            EventKind::Fork { child } => writeln!(out, "t{} fork t{}", t.0, child.0),
            EventKind::Join { child } => writeln!(out, "t{} join t{}", t.0, child.0),
            EventKind::Alloc { obj } => writeln!(out, "t{} alloc {obj}", t.0),
            EventKind::Free { obj } => writeln!(out, "t{} free {obj}", t.0),
            EventKind::Deref { obj, write } => {
                writeln!(
                    out,
                    "t{} deref {obj} {}",
                    t.0,
                    if write { "w" } else { "r" }
                )
            }
            EventKind::AtomicLoad { var, order, value } => {
                writeln!(out, "t{} aload {var} {order} {value}", t.0)
            }
            EventKind::AtomicStore { var, order, value } => {
                writeln!(out, "t{} astore {var} {order} {value}", t.0)
            }
            EventKind::AtomicRmw {
                var,
                order,
                read,
                write,
            } => writeln!(out, "t{} armw {var} {order} {read} {write}", t.0),
            EventKind::Fence { order } => writeln!(out, "t{} fence {order}", t.0),
            EventKind::Invoke { op, method, arg } => {
                writeln!(out, "t{} inv {op} {method} {arg}", t.0)
            }
            EventKind::Response { op, result } => writeln!(out, "t{} res {op} {result}", t.0),
        }
        .expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;

    const SAMPLE: &str = "\
# a sample trace
t0 w x0 1
t1 r x0 1

t0 acq l0
t0 rel l0
t0 fork t1
t1 join t0
t0 alloc o0
t0 free o0
t1 deref o0 w
t0 aload x1 acq 7
t0 astore x1 rel 8
t0 armw x1 acqrel 7 8
t0 fence sc
t0 inv op0 add 5
t0 res op0 1
";

    #[test]
    fn parse_all_event_kinds() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.total_events(), 15);
        assert_eq!(t.num_threads(), 2);
    }

    #[test]
    fn roundtrip() {
        let t = parse(SAMPLE).unwrap();
        let text = write(&t);
        let t2 = parse(&text).unwrap();
        assert_eq!(t.order(), t2.order());
        for (id, ev) in t.iter_order() {
            assert_eq!(ev.kind, t2.kind(id).clone());
        }
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = TraceBuilder::new();
        let x = b.var("x");
        let l = b.lock("m");
        b.on(0).acquire(l);
        b.on(0).write(x, 3);
        b.on(0).release(l);
        b.on(1).read(x, 3);
        let t = b.build();
        let t2 = parse(&write(&t)).unwrap();
        assert_eq!(t.total_events(), t2.total_events());
    }

    #[test]
    fn error_reporting() {
        let e = parse("t0 w x0").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("argument"));
        let e = parse("\n\nt0 zap x0 1").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown op"));
        let e = parse("q0 w x0 1").unwrap_err();
        assert!(e.message.contains("expected t<n>"));
        let e = parse("t0 aload x0 weird 1").unwrap_err();
        assert!(e.message.contains("memory order"));
        let e = parse("t0 deref o0 q").unwrap_err();
        assert!(e.message.contains("r|w"));
        let e = parse("t0").unwrap_err();
        assert!(e.message.contains("expected"));
        let e = parse("t0 w x0 abc").unwrap_err();
        assert!(e.message.contains("integer"));
        let e = parse("t0 inv op0 push 1").unwrap_err();
        assert!(e.message.contains("method"));
    }
}
