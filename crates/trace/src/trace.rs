//! The trace container and its derived views.

use crate::event::{Event, EventKind, LockId, VarId};
use csst_core::{NodeId, ThreadId};
use std::collections::HashMap;

/// A concurrent execution trace: per-thread event chains plus the
/// observed total order.
///
/// Events are addressed by [`NodeId`]: thread and position within the
/// thread's chain — exactly the `⟨t, i⟩` identifiers CSSTs operate on.
///
/// ```
/// use csst_trace::{Trace, EventKind, VarId};
///
/// let mut trace = Trace::new(2);
/// let w = trace.push(0, EventKind::Write { var: VarId(0), value: 1 });
/// let r = trace.push(1, EventKind::Read { var: VarId(0), value: 1 });
/// assert_eq!(trace.total_events(), 2);
/// assert_eq!(trace.reads_from().get(&r), Some(&w));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    threads: Vec<Vec<Event>>,
    /// Observed total order of the execution.
    order: Vec<NodeId>,
}

impl Trace {
    /// Creates an empty trace with `threads` (possibly still empty)
    /// thread chains.
    pub fn new(threads: usize) -> Self {
        Trace {
            threads: vec![Vec::new(); threads],
            order: Vec::new(),
        }
    }

    /// Appends an event to thread `t` (growing the thread table if
    /// needed) and to the observed total order; returns its id.
    pub fn push(&mut self, t: impl Into<ThreadId>, kind: EventKind) -> NodeId {
        let t = t.into();
        if t.index() >= self.threads.len() {
            self.threads.resize(t.index() + 1, Vec::new());
        }
        let chain = &mut self.threads[t.index()];
        let id = NodeId::new(t, chain.len() as u32);
        chain.push(Event {
            kind,
            trace_pos: self.order.len() as u32,
        });
        self.order.push(id);
        id
    }

    /// Number of threads (chains).
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Number of events of thread `t`.
    pub fn thread_len(&self, t: ThreadId) -> usize {
        self.threads.get(t.index()).map_or(0, Vec::len)
    }

    /// Length of the longest thread chain (the chain capacity a
    /// partial-order index needs).
    pub fn max_chain_len(&self) -> usize {
        self.threads.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of events.
    pub fn total_events(&self) -> usize {
        self.order.len()
    }

    /// The event at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not address an event of this trace.
    pub fn event(&self, id: NodeId) -> &Event {
        &self.threads[id.thread.index()][id.pos as usize]
    }

    /// The event kind at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not address an event of this trace.
    pub fn kind(&self, id: NodeId) -> &EventKind {
        &self.event(id).kind
    }

    /// The events of thread `t`, in program order.
    pub fn events_of(&self, t: ThreadId) -> &[Event] {
        self.threads.get(t.index()).map_or(&[], Vec::as_slice)
    }

    /// Iterates over all events in the observed total order.
    pub fn iter_order(&self) -> impl Iterator<Item = (NodeId, &Event)> + '_ {
        self.order.iter().map(move |&id| (id, self.event(id)))
    }

    /// The observed total order as a slice of event ids.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `id` in the observed total order.
    pub fn trace_pos(&self, id: NodeId) -> u32 {
        self.event(id).trace_pos
    }

    // ----- derived views ----------------------------------------------------

    /// The reads-from map of the observed execution: each plain read is
    /// mapped to the latest plain write of the same variable that
    /// precedes it in the trace order, regardless of values.
    pub fn reads_from(&self) -> HashMap<NodeId, NodeId> {
        let mut last_write: HashMap<VarId, NodeId> = HashMap::new();
        let mut rf = HashMap::new();
        for (id, ev) in self.iter_order() {
            match ev.kind {
                EventKind::Write { var, .. } => {
                    last_write.insert(var, id);
                }
                EventKind::Read { var, .. } => {
                    if let Some(&w) = last_write.get(&var) {
                        rf.insert(id, w);
                    }
                }
                _ => {}
            }
        }
        rf
    }

    /// Per-variable plain read/write access lists, in trace order.
    pub fn var_accesses(&self) -> HashMap<VarId, VarAccesses> {
        let mut map: HashMap<VarId, VarAccesses> = HashMap::new();
        for (id, ev) in self.iter_order() {
            match ev.kind {
                EventKind::Read { var, .. } => map.entry(var).or_default().reads.push(id),
                EventKind::Write { var, .. } => map.entry(var).or_default().writes.push(id),
                _ => {}
            }
        }
        map
    }

    /// Critical sections per lock, in trace order of their acquires.
    /// An unreleased section has `release == None`.
    pub fn critical_sections(&self) -> Vec<CriticalSection> {
        let mut open: HashMap<(ThreadId, LockId), usize> = HashMap::new();
        let mut sections = Vec::new();
        for (id, ev) in self.iter_order() {
            match ev.kind {
                EventKind::Acquire { lock } => {
                    let idx = sections.len();
                    sections.push(CriticalSection {
                        lock,
                        thread: id.thread,
                        acquire: id,
                        release: None,
                    });
                    open.insert((id.thread, lock), idx);
                }
                EventKind::Release { lock } => {
                    if let Some(idx) = open.remove(&(id.thread, lock)) {
                        sections[idx].release = Some(id);
                    }
                }
                _ => {}
            }
        }
        sections
    }

    /// Locks held by the thread of `id` at the moment `id` executes
    /// (acquires strictly before `id` in program order, not yet
    /// released).
    pub fn locks_held_at(&self, id: NodeId) -> Vec<LockId> {
        let mut held = Vec::new();
        for ev in &self.threads[id.thread.index()][..id.pos as usize] {
            match ev.kind {
                EventKind::Acquire { lock } => held.push(lock),
                EventKind::Release { lock } => {
                    if let Some(i) = held.iter().rposition(|&l| l == lock) {
                        held.remove(i);
                    }
                }
                _ => {}
            }
        }
        held
    }
}

/// Plain accesses to one variable, in trace order.
#[derive(Debug, Clone, Default)]
pub struct VarAccesses {
    /// Plain reads.
    pub reads: Vec<NodeId>,
    /// Plain writes.
    pub writes: Vec<NodeId>,
}

/// One lock-protected region of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalSection {
    /// The protecting lock.
    pub lock: LockId,
    /// The executing thread.
    pub thread: ThreadId,
    /// The acquire event.
    pub acquire: NodeId,
    /// The matching release event, if the section was closed.
    pub release: Option<NodeId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Method;
    use crate::event::{EventKind as K, OpId};

    #[test]
    fn push_and_addressing() {
        let mut t = Trace::new(2);
        let a = t.push(
            0,
            K::Write {
                var: VarId(0),
                value: 1,
            },
        );
        let b = t.push(
            1,
            K::Read {
                var: VarId(0),
                value: 1,
            },
        );
        let c = t.push(
            0,
            K::Write {
                var: VarId(0),
                value: 2,
            },
        );
        assert_eq!(a, NodeId::new(0, 0));
        assert_eq!(b, NodeId::new(1, 0));
        assert_eq!(c, NodeId::new(0, 1));
        assert_eq!(t.total_events(), 3);
        assert_eq!(t.max_chain_len(), 2);
        assert_eq!(t.thread_len(ThreadId(0)), 2);
        assert_eq!(t.trace_pos(b), 1);
        assert_eq!(t.order(), &[a, b, c]);
        assert!(matches!(t.kind(c), K::Write { value: 2, .. }));
    }

    #[test]
    fn push_grows_thread_table() {
        let mut t = Trace::new(0);
        t.push(
            3,
            K::Fence {
                order: crate::MemOrder::SeqCst,
            },
        );
        assert_eq!(t.num_threads(), 4);
        assert_eq!(t.thread_len(ThreadId(3)), 1);
        assert_eq!(t.thread_len(ThreadId(0)), 0);
        assert!(t.events_of(ThreadId(9)).is_empty());
    }

    #[test]
    fn reads_from_latest_write() {
        let mut t = Trace::new(2);
        let w1 = t.push(
            0,
            K::Write {
                var: VarId(0),
                value: 1,
            },
        );
        let r1 = t.push(
            1,
            K::Read {
                var: VarId(0),
                value: 1,
            },
        );
        let w2 = t.push(
            0,
            K::Write {
                var: VarId(0),
                value: 2,
            },
        );
        let r2 = t.push(
            1,
            K::Read {
                var: VarId(0),
                value: 2,
            },
        );
        let r_other = t.push(
            1,
            K::Read {
                var: VarId(1),
                value: 0,
            },
        );
        let rf = t.reads_from();
        assert_eq!(rf.get(&r1), Some(&w1));
        assert_eq!(rf.get(&r2), Some(&w2));
        assert_eq!(rf.get(&r_other), None, "no write to x1 yet");
    }

    #[test]
    fn var_accesses_in_order() {
        let mut t = Trace::new(2);
        let w = t.push(
            0,
            K::Write {
                var: VarId(5),
                value: 1,
            },
        );
        let r = t.push(
            1,
            K::Read {
                var: VarId(5),
                value: 1,
            },
        );
        let acc = t.var_accesses();
        let xs = &acc[&VarId(5)];
        assert_eq!(xs.writes, vec![w]);
        assert_eq!(xs.reads, vec![r]);
    }

    #[test]
    fn critical_sections_and_held_locks() {
        let mut t = Trace::new(1);
        let a1 = t.push(0, K::Acquire { lock: LockId(0) });
        let a2 = t.push(0, K::Acquire { lock: LockId(1) });
        let mid = t.push(
            0,
            K::Write {
                var: VarId(0),
                value: 0,
            },
        );
        let r2 = t.push(0, K::Release { lock: LockId(1) });
        let r1 = t.push(0, K::Release { lock: LockId(0) });
        let cs = t.critical_sections();
        assert_eq!(cs.len(), 2);
        assert_eq!(cs[0].acquire, a1);
        assert_eq!(cs[0].release, Some(r1));
        assert_eq!(cs[1].acquire, a2);
        assert_eq!(cs[1].release, Some(r2));
        assert_eq!(t.locks_held_at(mid), vec![LockId(0), LockId(1)]);
        assert_eq!(t.locks_held_at(a1), vec![]);
        assert_eq!(t.locks_held_at(r1), vec![LockId(0)]);
    }

    #[test]
    fn unclosed_critical_section() {
        let mut t = Trace::new(1);
        t.push(0, K::Acquire { lock: LockId(0) });
        let cs = t.critical_sections();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].release, None);
    }

    #[test]
    fn invoke_response_events() {
        let mut t = Trace::new(1);
        let i = t.push(
            0,
            K::Invoke {
                op: OpId(0),
                method: Method::Add,
                arg: 7,
            },
        );
        let r = t.push(
            0,
            K::Response {
                op: OpId(0),
                result: 1,
            },
        );
        assert!(matches!(
            t.kind(i),
            K::Invoke {
                method: Method::Add,
                ..
            }
        ));
        assert!(matches!(t.kind(r), K::Response { result: 1, .. }));
    }
}
