//! Property tests for the trace substrate: text-format round trips over
//! arbitrary event sequences and linearization invariants.

use csst_core::{NodeId, ThreadId};
use csst_trace::sc::{is_acyclic, linearize};
use csst_trace::{EventKind, LockId, MemOrder, Method, ObjId, OpId, Trace, VarId};
use proptest::prelude::*;

fn arb_order() -> impl Strategy<Value = MemOrder> {
    prop_oneof![
        Just(MemOrder::Relaxed),
        Just(MemOrder::Acquire),
        Just(MemOrder::Release),
        Just(MemOrder::AcqRel),
        Just(MemOrder::SeqCst),
    ]
}

fn arb_kind() -> impl Strategy<Value = EventKind> {
    prop_oneof![
        (0u32..8, 0u64..100).prop_map(|(v, val)| EventKind::Read {
            var: VarId(v),
            value: val
        }),
        (0u32..8, 0u64..100).prop_map(|(v, val)| EventKind::Write {
            var: VarId(v),
            value: val
        }),
        (0u32..4).prop_map(|l| EventKind::Acquire { lock: LockId(l) }),
        (0u32..4).prop_map(|l| EventKind::Release { lock: LockId(l) }),
        (0u32..5).prop_map(|t| EventKind::Fork { child: ThreadId(t) }),
        (0u32..5).prop_map(|t| EventKind::Join { child: ThreadId(t) }),
        (0u32..6).prop_map(|o| EventKind::Alloc { obj: ObjId(o) }),
        (0u32..6).prop_map(|o| EventKind::Free { obj: ObjId(o) }),
        (0u32..6, any::<bool>()).prop_map(|(o, w)| EventKind::Deref {
            obj: ObjId(o),
            write: w
        }),
        (0u32..8, arb_order(), 0u64..100).prop_map(|(v, o, val)| EventKind::AtomicLoad {
            var: VarId(v),
            order: o,
            value: val
        }),
        (0u32..8, arb_order(), 0u64..100).prop_map(|(v, o, val)| EventKind::AtomicStore {
            var: VarId(v),
            order: o,
            value: val
        }),
        (0u32..8, arb_order(), 0u64..100, 0u64..100).prop_map(|(v, o, r, w)| {
            EventKind::AtomicRmw {
                var: VarId(v),
                order: o,
                read: r,
                write: w,
            }
        }),
        arb_order().prop_map(|o| EventKind::Fence { order: o }),
        (0u32..20, 0u64..10).prop_map(|(op, a)| EventKind::Invoke {
            op: OpId(op),
            method: Method::Add,
            arg: a
        }),
        (0u32..20, 0u64..2).prop_map(|(op, r)| EventKind::Response {
            op: OpId(op),
            result: r
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Decoder totality under corruption: take a valid CSTB stream,
    /// apply arbitrary byte flips, overwrites and truncation, and both
    /// binary entry points must return a value or a positioned error —
    /// never panic. This is the property `csst-serve` leans on when an
    /// injected fault corrupts an EVENTS frame mid-session.
    #[test]
    fn binary_decoding_survives_arbitrary_corruption(
        events in prop::collection::vec((0u32..5, arb_kind()), 0..60),
        flips in prop::collection::vec((any::<usize>(), any::<u8>()), 0..12),
        cut in any::<usize>()
    ) {
        let mut trace = Trace::new(5);
        for (t, kind) in events {
            trace.push(t, kind);
        }
        // parse() input: the full file (header + records); decode_events()
        // input: a headerless record stream, as carried by EVENTS frames.
        let file = csst_trace::binary::write(&trace);
        let mut records = Vec::new();
        for (id, ev) in trace.iter_order() {
            csst_trace::binary::encode_event(id.thread, &ev.kind, &mut records);
        }
        for mut bytes in [file, records] {
            for &(pos, byte) in &flips {
                if !bytes.is_empty() {
                    let pos = pos % bytes.len();
                    bytes[pos] ^= byte;
                }
            }
            if !bytes.is_empty() {
                bytes.truncate(cut % (bytes.len() + 1));
            }
            // A value or an error — any panic fails the test harness.
            let _ = csst_trace::binary::parse(&bytes);
            let _ = csst_trace::binary::decode_events(&bytes);
        }
    }

    #[test]
    fn text_roundtrip_any_events(
        events in prop::collection::vec((0u32..5, arb_kind()), 0..120)
    ) {
        let mut trace = Trace::new(5);
        for (t, kind) in events {
            trace.push(t, kind);
        }
        let serialized = csst_trace::text::write(&trace);
        let parsed = csst_trace::text::parse(&serialized).expect("own output parses");
        prop_assert_eq!(trace.order(), parsed.order());
        for (id, ev) in trace.iter_order() {
            prop_assert_eq!(&ev.kind, parsed.kind(id));
        }
    }

    #[test]
    fn linearize_respects_all_edges_or_detects_cycle(
        lens in prop::collection::vec(1usize..8, 2..5),
        raw_edges in prop::collection::vec((0usize..5, 0u32..8, 0usize..5, 0u32..8), 0..25)
    ) {
        let k = lens.len();
        let edges: Vec<(NodeId, NodeId)> = raw_edges
            .into_iter()
            .filter_map(|(t1, i1, t2, i2)| {
                let (t1, t2) = (t1 % k, t2 % k);
                if t1 == t2 {
                    return None;
                }
                let i1 = i1 % lens[t1] as u32;
                let i2 = i2 % lens[t2] as u32;
                Some((
                    NodeId::new(t1 as u32, i1),
                    NodeId::new(t2 as u32, i2),
                ))
            })
            .collect();
        match linearize(&lens, &edges) {
            Some(order) => {
                // Complete, duplicate-free, respects po and edges.
                prop_assert_eq!(order.len(), lens.iter().sum::<usize>());
                let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
                for (t, &len) in lens.iter().enumerate() {
                    for i in 1..len {
                        prop_assert!(
                            pos(NodeId::new(t as u32, (i - 1) as u32))
                                < pos(NodeId::new(t as u32, i as u32))
                        );
                    }
                }
                for (u, v) in edges {
                    prop_assert!(pos(u) < pos(v), "{} must precede {}", u, v);
                }
            }
            None => {
                // There must be a genuine cycle: verify by exhaustive
                // closure over the (tiny) node set.
                prop_assert!(!is_acyclic(&lens, &edges));
                let mut reach = std::collections::HashSet::new();
                for (u, v) in &edges {
                    reach.insert((*u, *v));
                }
                // Saturate with program order + transitivity.
                let nodes: Vec<NodeId> = (0..k)
                    .flat_map(|t| (0..lens[t] as u32).map(move |i| NodeId::new(t as u32, i)))
                    .collect();
                loop {
                    let mut grew = false;
                    let pairs: Vec<(NodeId, NodeId)> = reach.iter().copied().collect();
                    for &(a, b) in &pairs {
                        for &c in &nodes {
                            let po_bc = b.thread == c.thread && b.pos <= c.pos;
                            let bc = po_bc || reach.contains(&(b, c));
                            if bc && reach.insert((a, c)) {
                                grew = true;
                            }
                        }
                    }
                    if !grew {
                        break;
                    }
                }
                // A cycle exists iff some a reaches a node b that is
                // po-at-or-before a on a's own chain (covers a == b).
                let has_cycle = reach
                    .iter()
                    .any(|&(a, b)| a.thread == b.thread && b.pos <= a.pos);
                prop_assert!(has_cycle, "linearize refused an acyclic graph");
            }
        }
    }
}
