//! Round-trip tests for the two interchange formats over every
//! `gen::*` workload family.
//!
//! * **text** is lossless: `parse(write(t))` must reproduce the exact
//!   event sequence of `t`, for every generator family.
//! * **rapid** is a lossy projection (values and non-RAPID events are
//!   dropped, names are interned by first appearance), so the test
//!   asserts the projection is *stable*: one `write ∘ parse`
//!   normalization pass is a fixpoint, and the normalized trace
//!   preserves the multiset of per-thread RAPID event counts.

use csst_trace::gen::{
    alloc_program, c11_program, lock_program, object_history, racy_program, tso_history,
    AllocProgramCfg, C11Cfg, LockProgramCfg, ObjectHistoryCfg, RacyProgramCfg, TsoCfg,
};
use csst_trace::{rapid, text, EventKind, Trace};
use std::collections::BTreeMap;

/// One small seeded trace per generator family.
fn family_traces() -> Vec<(&'static str, Trace)> {
    vec![
        (
            "racy_program",
            racy_program(&RacyProgramCfg {
                seed: 0xA11CE,
                ..Default::default()
            }),
        ),
        (
            "lock_program",
            lock_program(&LockProgramCfg {
                seed: 0xB0B,
                ..Default::default()
            }),
        ),
        (
            "alloc_program",
            alloc_program(&AllocProgramCfg {
                seed: 0xCAFE,
                ..Default::default()
            }),
        ),
        (
            "tso_history",
            tso_history(&TsoCfg {
                seed: 0xD00D,
                ..Default::default()
            }),
        ),
        (
            "c11_program",
            c11_program(&C11Cfg {
                seed: 0xE66,
                ..Default::default()
            }),
        ),
        (
            "object_history",
            object_history(&ObjectHistoryCfg {
                seed: 0xF00,
                ..Default::default()
            }),
        ),
    ]
}

fn assert_same_events(family: &str, a: &Trace, b: &Trace) {
    assert_eq!(a.order(), b.order(), "{family}: observed order differs");
    for (id, ev) in a.iter_order() {
        assert_eq!(&ev.kind, b.kind(id), "{family}: event {id} differs");
    }
}

#[test]
fn text_roundtrip_is_lossless_for_every_family() {
    for (family, trace) in family_traces() {
        assert!(trace.total_events() > 0, "{family}: empty workload");
        let serialized = text::write(&trace);
        let parsed = text::parse(&serialized)
            .unwrap_or_else(|e| panic!("{family}: own text output fails to parse: {e:?}"));
        assert_same_events(family, &trace, &parsed);
        // And the writer is deterministic on the reparsed trace.
        assert_eq!(
            serialized,
            text::write(&parsed),
            "{family}: unstable writer"
        );
    }
}

/// Per-thread counts of each RAPID-representable event class, keyed so
/// the comparison is insensitive to thread renumbering (rapid interns
/// thread names by first appearance).
fn rapid_profile(trace: &Trace) -> BTreeMap<Vec<(&'static str, usize)>, usize> {
    let mut per_thread: Vec<BTreeMap<&'static str, usize>> =
        vec![BTreeMap::new(); trace.num_threads()];
    for (id, ev) in trace.iter_order() {
        let class = match ev.kind {
            EventKind::Read { .. } => "r",
            EventKind::Write { .. } => "w",
            EventKind::Acquire { .. } => "acq",
            EventKind::Release { .. } => "rel",
            EventKind::Fork { .. } => "fork",
            EventKind::Join { .. } => "join",
            _ => continue,
        };
        *per_thread[id.thread.0 as usize].entry(class).or_default() += 1;
    }
    let mut profile = BTreeMap::new();
    for counts in per_thread {
        if counts.is_empty() {
            continue; // threads with no RAPID events vanish from the format
        }
        *profile
            .entry(counts.into_iter().collect::<Vec<_>>())
            .or_default() += 1;
    }
    profile
}

#[test]
fn rapid_projection_is_stable_for_every_family() {
    for (family, trace) in family_traces() {
        let first = rapid::write(&trace);
        let normalized = rapid::parse(&first)
            .unwrap_or_else(|e| panic!("{family}: own rapid output fails to parse: {e:?}"));
        assert_eq!(
            normalized.total_events(),
            first.lines().count(),
            "{family}: every written line must parse to one event"
        );
        assert_eq!(
            rapid_profile(&trace),
            rapid_profile(&normalized),
            "{family}: RAPID projection must preserve per-thread event profiles"
        );
        // After one normalization pass, write ∘ parse is the identity.
        let second = rapid::write(&normalized);
        let reparsed = rapid::parse(&second).expect("normalized rapid output parses");
        assert_same_events(family, &normalized, &reparsed);
        assert_eq!(second, rapid::write(&reparsed), "{family}: not a fixpoint");
    }
}
