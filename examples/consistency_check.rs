//! The paper's §1.1 motivating example, executed end to end.
//!
//! A consistency analysis walks the trace of Figure 1, maps the read
//! `e2 : r(x,3)` to each of its two possible writers, saturates, hits a
//! cycle on the first choice, **deletes** the trial orderings, and
//! succeeds with the second — the insert/query/delete workload that
//! only fully dynamic structures support.
//!
//! Run with: `cargo run --example consistency_check`

use csst_core::{Csst, NodeId, PartialOrderIndex, PoError};
use csst_trace::TraceBuilder;

fn main() -> Result<(), PoError> {
    // Figure 1's trace: three threads. Thread 2's chain stands for the
    // long `e6 … en` chain of the figure (compressed to 2 events).
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let e0 = b.on(0).write(x, 1);
    let e3 = b.on(1).write(x, 3);
    let e4 = b.on(1).write(y, 4);
    let e5 = b.on(1).write(y, 5);
    let e1 = b.on(0).read(y, 5);
    let e2 = b.on(0).read(x, 3);
    let e6 = b.on(2).write(x, 3);
    let en = b.on(2).read(y, 4);
    let trace = b.build();

    let mut po = Csst::with_capacity(trace.num_threads(), trace.max_chain_len());

    // The partial order established so far (Figure 1a): the reads-from
    // edges the analysis has already committed to.
    po.insert_edge(e5, e1)?; // e1 reads y=5 from e5
    po.insert_edge(e4, en)?; // en reads y=4 from e4 … wait: e4 → en
    println!("initial order: e5→e1, e4→en (Figure 1a)");

    // The analysis now processes e2 : r(x,3). Candidates: e3 and e6.
    //
    // Trial 1 (Figure 1b): e3 ↦ e2.
    println!("\ntrial 1: map e3 ↦ e2");
    let mut trial: Vec<(NodeId, NodeId)> = Vec::new();
    for (from, to, label) in [
        (e3, e2, "2: rf edge e3 → e2"),
        // Saturation: e0 → e2 (program order) and e0 conflicts with
        // e3 on x, so e0 → e3; likewise e6 must not interpose: e2 → e6.
        (e0, e3, "3: saturation e0 → e3"),
        (e2, e6, "4: saturation e2 → e6"),
    ] {
        match po.insert_edge_checked(from, to) {
            Ok(()) => {
                println!("  inserted {label}");
                trial.push((from, to));
            }
            Err(PoError::WouldCycle { .. }) => {
                println!("  {label} would close a cycle");
            }
            Err(e) => return Err(e),
        }
    }
    // en reads y=4 from e4, so e5 (the later write to y) must come
    // after en: en → e5. Does that close a cycle with trial 1?
    match po.insert_edge_checked(en, e5) {
        Ok(()) => unreachable!("the paper's cycle must be detected"),
        Err(PoError::WouldCycle { .. }) => {
            println!("  en → e5 closes the cycle e2 → e6 →* en → e5 → e1 → e2: INCONSISTENT");
        }
        Err(e) => return Err(e),
    }

    // Delete the trial orderings — O(log n) per edge for CSSTs, a full
    // rebuild for vector clocks (§1.1).
    for (from, to) in trial.into_iter().rev() {
        po.delete_edge(from, to)?;
    }
    println!("  rolled back trial 1; {} edges remain", po.edge_count());

    // Trial 2 (Figure 1c): e6 ↦ e2.
    println!("\ntrial 2: map e6 ↦ e2");
    po.insert_edge_checked(e6, e2)?; // 5
    po.insert_edge_checked(e0, e6)?; // 6: e0 must precede e6
    po.insert_edge_checked(en, e5)?; // en's constraint now fits
    println!("  all orderings inserted: CONSISTENT");
    println!(
        "  final check: e0 →* en = {}, e2 →* e3 = {}",
        po.reachable(e0, en),
        po.reachable(e2, e3),
    );
    Ok(())
}
