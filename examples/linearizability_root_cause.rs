//! Root-causing a linearizability violation — the fully dynamic
//! workload of the paper's Table 7 (insertions *and* deletions).
//!
//! Run with: `cargo run --release --example linearizability_root_cause`

use csst_analyses::linearizability::{self, LinCfg, LinVerdict};
use csst_core::{Csst, GraphIndex};
use csst_trace::gen::{object_history, ObjectHistoryCfg};
use csst_trace::{Method, TraceBuilder};
use std::time::Instant;

fn main() {
    // A hand-made violating history: contains(1) returns true before
    // any add(1) has begun.
    let mut b = TraceBuilder::new();
    let (_, op_contains) = b.on(1).invoke(Method::Contains, 1);
    b.on(1).respond(op_contains, 1);
    let (_, op_add) = b.on(0).invoke(Method::Add, 1);
    b.on(0).respond(op_add, 1);
    let trace = b.build();

    let report = linearizability::analyze::<Csst>(&trace, &LinCfg::default());
    match &report.verdict {
        LinVerdict::Violation(rc) => println!(
            "hand-made history: violation after {} linearized ops; blocked: {:?}",
            rc.executed, rc.blocked
        ),
        v => println!("unexpected verdict: {v:?}"),
    }

    // A generated violating history, analyzed with both fully dynamic
    // representations (the only ones that support the backtracking
    // search's deletions).
    let trace = object_history(&ObjectHistoryCfg {
        threads: 3,
        ops_per_thread: 300,
        key_range: 5,
        violation: true,
        seed: 7,
    });
    println!(
        "\ngenerated history: {} operations",
        trace.total_events() / 2
    );

    let start = Instant::now();
    let csst = linearizability::analyze::<Csst>(&trace, &LinCfg::default());
    let t_csst = start.elapsed();
    let start = Instant::now();
    let graph = linearizability::analyze::<GraphIndex>(&trace, &LinCfg::default());
    let t_graph = start.elapsed();
    assert_eq!(csst.verdict, graph.verdict);

    match &csst.verdict {
        LinVerdict::Linearizable(order) => {
            println!("verdict: linearizable ({} ops in order)", order.len())
        }
        LinVerdict::Violation(rc) => println!(
            "verdict: violation — longest legal prefix {} ops, root-cause frontier {:?}",
            rc.executed, rc.blocked
        ),
        LinVerdict::Unknown => println!("verdict: budget exhausted"),
    }
    println!(
        "search: {} steps, {} backtracks, {} edges inserted, {} deleted",
        csst.steps, csst.backtracks, csst.inserted, csst.deleted
    );
    println!("\ntime with CSSTs  : {t_csst:?}");
    println!("time with Graphs : {t_graph:?} (the Table 7 baseline)");
}
