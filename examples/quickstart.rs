//! Quickstart: maintaining a partial order with CSSTs.
//!
//! Builds the chain DAG of a small concurrent execution, inserts and
//! deletes orderings, and issues the five operations of the paper
//! (§2.2): `insertEdge`, `deleteEdge`, `reachable`, `successor`,
//! `predecessor`.
//!
//! Run with: `cargo run --example quickstart`

use csst_core::{Csst, IncrementalCsst, NodeId, PartialOrderIndex, PoError, ThreadId};

fn main() -> Result<(), PoError> {
    // A capacity-free partial order: chains (threads) and positions
    // materialize as they are touched. Events of one chain are
    // implicitly ordered (program order); only cross-chain orderings
    // are ever inserted. (With a known workload shape, use
    // `Csst::with_capacity(chains, chain_capacity)` to pre-size.)
    let mut po = Csst::new();

    let e1 = NodeId::new(0, 10); // event 10 of thread 0
    let e2 = NodeId::new(1, 20); // event 20 of thread 1
    let e3 = NodeId::new(2, 5); // event 5 of thread 2

    // Program order is built in.
    assert!(po.reachable(NodeId::new(0, 3), NodeId::new(0, 42)));

    // Insert cross-chain orderings (e.g. a reads-from edge discovered
    // by an analysis).
    po.insert_edge(e1, e2)?;
    po.insert_edge(e2, e3)?;
    println!(
        "inserted {} edges; the domain grew to {} chains",
        po.edge_count(),
        po.chains()
    );

    // Reachability is transitive and respects program order.
    assert!(po.reachable(e1, e3));
    assert!(po.reachable(NodeId::new(0, 0), NodeId::new(2, 99)));
    assert!(!po.reachable(NodeId::new(0, 11), e3));

    // successor/predecessor: the frontier operations analyses use.
    println!(
        "earliest event of thread 2 reachable from {e1}: {:?}",
        po.successor(e1, ThreadId(2))
    );
    println!(
        "latest event of thread 0 reaching {e3}: {:?}",
        po.predecessor(e3, ThreadId(0))
    );

    // Fully dynamic: deletion rolls the order back (the Figure 1c
    // workflow — try a reads-from choice, fail, undo it).
    po.delete_edge(e2, e3)?;
    assert!(!po.reachable(e1, e3));
    println!("after deletion, {e1} no longer reaches {e3}");

    // Checked insertion refuses cycles.
    po.insert_edge_checked(e2, NodeId::new(0, 50))?;
    let err = po.insert_edge_checked(NodeId::new(0, 50), e1).unwrap_err();
    println!("cycle refused: {err}");

    // The incremental variant answers queries in a single
    // suffix-minima lookup; use it when the analysis never deletes.
    let mut inc = IncrementalCsst::with_capacity(3, 100);
    inc.insert_edge(e1, e2)?;
    inc.insert_edge(e2, e3)?;
    assert!(inc.reachable(e1, e3));
    println!(
        "incremental CSST arrays peak density: {:?}",
        inc.density_stats()
    );
    Ok(())
}
