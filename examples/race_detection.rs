//! Predictive race detection over a generated workload, comparing the
//! partial-order representations of the paper's Table 1.
//!
//! Run with: `cargo run --release --example race_detection`

use csst_analyses::race::{self, RaceCfg};
use csst_core::{IncrementalCsst, PartialOrderIndex, SegTreeIndex, VectorClockIndex};
use csst_trace::gen::{racy_program, RacyProgramCfg};
use std::time::Instant;

fn main() {
    let trace = racy_program(&RacyProgramCfg {
        threads: 8,
        events_per_thread: 10_000,
        vars: 12,
        locks: 3,
        lock_frac: 0.5,
        write_frac: 0.4,
        shared_frac: 0.1,
        seed: 42,
    });
    println!(
        "generated trace: {} threads, {} events",
        trace.num_threads(),
        trace.total_events()
    );

    let cfg = RaceCfg {
        max_candidates: 20,
        ..Default::default()
    };

    // Same analysis, three representations — the Table 1 comparison.
    let start = Instant::now();
    let csst = race::predict::<IncrementalCsst>(&trace, &cfg);
    let t_csst = start.elapsed();

    let start = Instant::now();
    let st = race::predict::<SegTreeIndex>(&trace, &cfg);
    let t_st = start.elapsed();

    let start = Instant::now();
    let vc = race::predict::<VectorClockIndex>(&trace, &cfg);
    let t_vc = start.elapsed();

    assert_eq!(csst.races, st.races);
    assert_eq!(csst.races, vc.races);

    println!(
        "\n{} candidate pairs witness-checked, {} predicted races:",
        csst.candidates,
        csst.races.len()
    );
    for (a, b) in csst.races.iter().take(5) {
        println!("  race between {a} and {b}");
    }
    if csst.races.len() > 5 {
        println!("  … and {} more", csst.races.len() - 5);
    }

    println!("\ntime with CSSTs : {t_csst:?}");
    println!("time with STs   : {t_st:?}");
    println!("time with VCs   : {t_vc:?}");
    println!(
        "\nbase-order memory: CSSTs {} KiB, STs {} KiB, VCs {} KiB",
        csst.base.memory_bytes() / 1024,
        st.base.memory_bytes() / 1024,
        vc.base.memory_bytes() / 1024,
    );
    println!(
        "suffix-minima array density q = {:.3} (sparse, as the paper predicts)",
        csst.base.density_stats().q
    );
}
