//! x86-TSO litmus tests through the consistency checker (Table 4's
//! analysis), on the classic store-buffering and message-passing
//! shapes.
//!
//! The checker maintains a chain DAG with **two chains per thread**
//! (§5.2(4) of the paper): an issue chain for program order and a
//! commit chain for the store buffer. TSO's `W→R` relaxation falls out
//! of the encoding; coherence violations surface as cycles.
//!
//! Run with: `cargo run --example tso_litmus`

use csst_analyses::tso::{self, TsoCheckCfg};
use csst_core::IncrementalCsst;
use csst_trace::{Trace, TraceBuilder};

fn check(name: &str, trace: &Trace, expect_consistent: bool) {
    let r = tso::check::<IncrementalCsst>(trace, &TsoCheckCfg::default());
    let verdict = if r.consistent { "allowed" } else { "FORBIDDEN" };
    println!(
        "{name:<38} {verdict:<10} ({} inferred orderings, {} rounds)",
        r.inserted, r.rounds
    );
    assert_eq!(r.consistent, expect_consistent, "{name}: wrong verdict");
}

fn main() {
    // SB (store buffering): both loads read the initial value. The
    // hallmark TSO relaxation — forbidden under SC, allowed here.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    b.on(0).write(x, 1);
    b.on(0).read(y, 0);
    b.on(1).write(y, 2);
    b.on(1).read(x, 0);
    check("SB: r1 = r2 = 0", &b.build(), true);

    // SB with both loads observing the other thread's store: also fine.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    b.on(0).write(x, 1);
    b.on(0).read(y, 2);
    b.on(1).write(y, 2);
    b.on(1).read(x, 1);
    check("SB: r1 = r2 = new", &b.build(), true);

    // MP (message passing): observing the flag but not the data it
    // publishes violates TSO (stores commit in order).
    let mut b = TraceBuilder::new();
    let data = b.var("data");
    let flag = b.var("flag");
    b.on(0).write(data, 1);
    b.on(0).write(flag, 2);
    b.on(1).read(flag, 2); // sees the flag...
    b.on(1).read(data, 0); // ...but stale data: forbidden
    check("MP: flag seen, data stale", &b.build(), false);

    // MP with both reads observing the new values: fine.
    let mut b = TraceBuilder::new();
    let data = b.var("data");
    let flag = b.var("flag");
    b.on(0).write(data, 1);
    b.on(0).write(flag, 2);
    b.on(1).read(flag, 2);
    b.on(1).read(data, 1);
    check("MP: flag and data seen", &b.build(), true);

    // Store-to-load forwarding: a thread reads its own buffered store
    // before anyone else can see it.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    b.on(0).write(x, 1);
    b.on(0).read(x, 1); // forwarded from the own buffer
    b.on(1).read(x, 0); // the store has not committed yet
    check("forwarding before commit", &b.build(), true);

    // Coherence: a single thread cannot see x go backwards.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    b.on(0).write(x, 1);
    b.on(1).read(x, 1);
    b.on(1).read(x, 0); // older value after the newer one: forbidden
    check("coherence: value goes backwards", &b.build(), false);

    println!("\nall litmus verdicts as expected");
}
