#!/usr/bin/env bash
# Runs the headless perf harness (`repro -- bench`) and writes the
# machine-readable measurements to BENCH_PR7.json at the repo root, or
# compares two such files.
#
#   scripts/bench.sh                        full measurement run (minutes)
#   scripts/bench.sh --smoke                tiny CI run: validates the harness
#                                           and the JSON emitter, numbers
#                                           meaningless
#   scripts/bench.sh --compare OLD NEW      print per-workload ops/sec deltas
#                                           between two BENCH_*.json files and
#                                           fail if any (workload,
#                                           representation) cell measured in
#                                           both regressed by more than 20%.
#                                           Baselines with differing key sets
#                                           diff on the intersection: cells
#                                           only in NEW are reported "new",
#                                           cells only in OLD "removed" —
#                                           informational, not failures. A
#                                           cell measured in both that went
#                                           supported -> unsupported is still
#                                           a capability regression.
#
# Extra arguments are passed through to `repro` (e.g. --json PATH).
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--compare" ]]; then
    if [[ $# -ne 3 ]]; then
        echo "usage: scripts/bench.sh --compare OLD.json NEW.json" >&2
        exit 2
    fi
    python3 - "$2" "$3" <<'EOF'
import json
import sys

REGRESSION_LIMIT = 0.20  # fail when ops/sec drops by more than this

old_path, new_path = sys.argv[1], sys.argv[2]
old = json.load(open(old_path, encoding="utf-8"))
new = json.load(open(new_path, encoding="utf-8"))

def cells(doc):
    return {
        (m["workload"], m["representation"]): m
        for m in doc["measurements"]
    }

old_cells, new_cells = cells(old), cells(new)
failures = []
print(f"# {old_path} -> {new_path}")
print(f"{'workload':<18} {'representation':<18} {'old ops/s':>12} "
      f"{'new ops/s':>12} {'delta':>8}")
for key, m_new in new_cells.items():
    workload, repr_ = key
    m_old = old_cells.get(key)
    if m_old is None:
        status = "new" if m_new["supported"] else "new (n/a)"
        print(f"{workload:<18} {repr_:<18} {'-':>12} "
              f"{m_new['ops_per_sec']:>12.0f} {status:>8}")
        continue
    if m_old["supported"] and not m_new["supported"]:
        # A cell the old baseline measured is now unsupported: that is
        # a capability regression, not a gap to skip over.
        print(f"{workload:<18} {repr_:<18} {m_old['ops_per_sec']:>12.0f} "
              f"{'n/a':>12} {'LOST':>8}  <-- REGRESSION")
        failures.append((workload, repr_, "supported -> unsupported"))
        continue
    if not m_old["supported"]:
        continue
    old_ops, new_ops = m_old["ops_per_sec"], m_new["ops_per_sec"]
    delta = (new_ops - old_ops) / old_ops if old_ops else 0.0
    flag = ""
    if delta < -REGRESSION_LIMIT:
        flag = "  <-- REGRESSION"
        failures.append((workload, repr_, delta))
    print(f"{workload:<18} {repr_:<18} {old_ops:>12.0f} "
          f"{new_ops:>12.0f} {delta:>+7.1%}{flag}")
for key in old_cells:
    if key not in new_cells:
        # Report cells only the old baseline has. Key sets legitimately
        # differ across baseline generations (new workloads appear,
        # retired ones go away), so this is informational: the 20% gate
        # applies to the intersection only.
        print(f"{key[0]:<18} {key[1]:<18} {'-':>12} {'-':>12} {'removed':>8}")
# Shard-scaling efficiency of the NEW baseline: for each representation
# that ran the ingest_shards* sweep, ops/s per worker relative to the
# 1-shard point. eff(n) ~= 1.0 means linear scaling; on a single-core
# host expect eff(n) ~= 1/n (same throughput, n times the workers).
# Informational only — scaling depends on the host's core count, so it
# is never gated.
shard_cells = {}
for (workload, repr_), m in new_cells.items():
    if workload.startswith("ingest_shards") and m["supported"]:
        shard_cells.setdefault(repr_, {})[int(workload[len("ingest_shards"):])] = \
            m["ops_per_sec"]
printed_header = False
for repr_ in sorted(shard_cells):
    points = shard_cells[repr_]
    base = points.get(1)
    if not base:
        continue
    if not printed_header:
        print("\n# shard scaling (NEW): ops/s per worker vs the 1-shard point")
        printed_header = True
    line = "  ".join(
        f"eff({n})={points[n] / (n * base):.2f}" for n in sorted(points) if n != 1
    )
    print(f"{repr_:<18} base {base:>12.0f} ops/s  {line}")
old_repeat = old.get("config", {}).get("repeat", 1)
new_repeat = new.get("config", {}).get("repeat", 1)
if old_repeat != new_repeat:
    print(f"note: statistics differ — {old_path} is best-of-{old_repeat}, "
          f"{new_path} is best-of-{new_repeat}")
if failures:
    print(f"\nFAIL: {len(failures)} cell(s) regressed more than "
          f"{REGRESSION_LIMIT:.0%}:", file=sys.stderr)
    for workload, repr_, delta in failures:
        what = delta if isinstance(delta, str) else f"{delta:+.1%}"
        print(f"  {workload}/{repr_}: {what}", file=sys.stderr)
    sys.exit(1)
print("\ncompare OK: no cell regressed more than "
      f"{REGRESSION_LIMIT:.0%}")
EOF
    exit 0
fi

cargo run --release --bin repro -- bench "$@"
