#!/usr/bin/env bash
# Runs the headless perf harness (`repro -- bench`) and writes the
# machine-readable measurements to BENCH_PR4.json at the repo root.
#
#   scripts/bench.sh            full measurement run (minutes)
#   scripts/bench.sh --smoke    tiny CI run: validates the harness and
#                               the JSON emitter, numbers meaningless
#
# Extra arguments are passed through to `repro` (e.g. --json PATH).
set -euo pipefail

cd "$(dirname "$0")/.."

cargo run --release --bin repro -- bench "$@"
