#!/usr/bin/env bash
# Checks the markdown "book" (docs/ARCHITECTURE.md, README.md) for rot:
# every relative link must point at an existing file, and every
# intra-document #anchor must match a real heading (GitHub slug rules).
# Also validates every checked-in perf baseline (BENCH_*.json at the
# repo root, discovered by glob): parseable JSON with the expected
# schema, keys, and coverage.
# Run from the repository root; CI runs it as a dedicated step.
set -euo pipefail

cd "$(dirname "$0")/.."

python3 - "$@" <<'EOF'
import os
import re
import sys

FILES = ["README.md", "docs/ARCHITECTURE.md"]
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    slug = heading.strip().lower()
    # Drop inline code backticks, then any char that is not a word
    # character, space or hyphen; spaces become hyphens.
    slug = slug.replace("`", "")
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")

errors = []
for path in FILES:
    if not os.path.exists(path):
        errors.append(f"{path}: file listed in check_docs.sh is missing")
        continue
    text = open(path, encoding="utf-8").read()
    # Collect this file's own anchors (skip headings inside fences).
    anchors = set()
    in_fence = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
        elif not in_fence and line.startswith("#"):
            anchors.add(github_slug(line.lstrip("#")))
    # Strip code fences before scanning for links.
    prose = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in LINK.findall(prose):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not checked offline
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), file_part)
            )
            if not os.path.exists(resolved):
                errors.append(f"{path}: broken link `{target}` ({resolved} missing)")
                continue
            if anchor and resolved.endswith(".md"):
                other = open(resolved, encoding="utf-8").read()
                other_anchors = {
                    github_slug(l.lstrip("#"))
                    for l in other.splitlines()
                    if l.startswith("#")
                }
                if anchor not in other_anchors:
                    errors.append(f"{path}: broken anchor `{target}`")
        elif anchor and anchor not in anchors:
            errors.append(f"{path}: broken intra-doc anchor `#{anchor}`")

import json

ROW_KEYS = {
    "workload", "representation", "display", "supported", "ops",
    "elapsed_ns", "ops_per_sec", "memory_bytes_peak", "memory_bytes_final",
}
BASE_WORKLOADS = ("streaming_insert", "bulk_delete", "delete_churn",
                  "query_mix")
PR5_WORKLOADS = BASE_WORKLOADS + (
    "query_k4", "query_k16", "query_k64",
    "query_update_r1", "query_update_r16", "query_update_r256")
# Coverage each known baseline generation must provide. Frozen older
# baselines only carry the workloads that existed when they were cut;
# the current one must also cover everything added since. Baselines
# discovered by glob but not listed here are schema-validated with the
# base coverage so a new BENCH_PRn.json can never dodge the check.
WANTED = {
    "BENCH_PR4.json": BASE_WORKLOADS,
    "BENCH_PR5.json": PR5_WORKLOADS,
    "BENCH_PR6.json": PR5_WORKLOADS + (
        "query_batch1", "query_batch16", "query_batch256"),
    "BENCH_PR7.json": PR5_WORKLOADS + (
        "query_batch1", "query_batch16", "query_batch256",
        "ingest_shards1", "ingest_shards2", "ingest_shards4",
        "ingest_shards8"),
}
import glob

BENCHES = sorted(set(glob.glob("BENCH_*.json")) | set(WANTED))
for BENCH in BENCHES:
    wanted_workloads = WANTED.get(BENCH, BASE_WORKLOADS)
    if not os.path.exists(BENCH):
        errors.append(f"{BENCH}: perf baseline missing (run scripts/bench.sh)")
        continue
    try:
        bench = json.load(open(BENCH, encoding="utf-8"))
        if bench.get("schema") != "csst-bench/v1":
            errors.append(f"{BENCH}: unexpected schema {bench.get('schema')!r}")
        for key in ("mode", "config", "measurements"):
            if key not in bench:
                errors.append(f"{BENCH}: missing top-level key `{key}`")
        rows = bench.get("measurements", [])
        for i, row in enumerate(rows):
            missing = ROW_KEYS - set(row)
            if missing:
                errors.append(f"{BENCH}: row {i} missing {sorted(missing)}")
                break
        reprs = {r.get("representation") for r in rows}
        for want in ("csst_dynamic", "csst_incremental", "segtree",
                     "vc", "avc", "graph"):
            if want not in reprs:
                errors.append(f"{BENCH}: representation `{want}` absent")
        workloads = {r.get("workload") for r in rows}
        for want in wanted_workloads:
            if want not in workloads:
                errors.append(f"{BENCH}: workload `{want}` absent")
    except json.JSONDecodeError as e:
        errors.append(f"{BENCH}: not valid JSON ({e})")

if errors:
    print("documentation check failed:", file=sys.stderr)
    for e in errors:
        print(f"  {e}", file=sys.stderr)
    sys.exit(1)
print(f"docs OK: {', '.join(FILES)} + " + ", ".join(BENCHES))
EOF
