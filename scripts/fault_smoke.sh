#!/usr/bin/env bash
# Chaos suite for csst-serve: each scenario boots a fresh server with a
# deterministic fault (injected via --faults, or provoked by a
# misbehaving client), checks that exactly the targeted session fails
# or degrades with the expected structured error, proves the server
# still serves a healthy follow-up session, and finishes with a clean
# SHUTDOWN whose exit code (including the server's own) is checked.
#
#   scripts/fault_smoke.sh [--release]
#
# CI runs it with --release against the already-built binaries.
set -euo pipefail

cd "$(dirname "$0")/.."

profile="debug"
cargo_flags=()
if [[ "${1:-}" == "--release" ]]; then
    profile="release"
    cargo_flags=(--release)
fi

cargo build "${cargo_flags[@]}" -p csst-serve --bins
serve="target/$profile/csst-serve"
client="target/$profile/csst-client"

logdir="$(mktemp -d)"
trap 'rm -rf "$logdir"' EXIT

fail=0
server_pid=""
addr=""

# start_server LOG [serve flags...] — boots a server on an OS-chosen
# port and waits for its address.
start_server() {
    local log="$1"
    shift
    "$serve" --listen tcp:127.0.0.1:0 "$@" >"$logdir/$log" 2>&1 &
    server_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$logdir/$log" | head -n1)"
        [[ -n "$addr" ]] && break
        if ! kill -0 "$server_pid" 2>/dev/null; then
            echo "fault_smoke: server died before binding ($log)" >&2
            cat "$logdir/$log" >&2
            exit 1
        fi
        sleep 0.1
    done
    if [[ -z "$addr" ]]; then
        echo "fault_smoke: server never reported an address ($log)" >&2
        exit 1
    fi
}

# stop_server LOG — clean SHUTDOWN; the server must exit 0.
stop_server() {
    local log="$1"
    local code=0
    "$client" --connect "$addr" --analysis hb --shards 1 --format binary \
        --shutdown >"$logdir/$log.shutdown" 2>&1 || code=$?
    if [[ "$code" != "1" ]]; then
        # The hb demo is racy, so the shutdown-driving session exits 1.
        echo "fault_smoke: shutdown driver exited $code (want 1) after $log" >&2
        cat "$logdir/$log.shutdown" >&2
        fail=1
    fi
    local server_code=0
    wait "$server_pid" || server_code=$?
    if [[ "$server_code" != "0" ]]; then
        echo "fault_smoke: server exited $server_code (want 0) after $log" >&2
        cat "$logdir/$log" >&2
        fail=1
    fi
}

# healthy_session LOG — a full hb session that must match the batch
# analyzer; proves the server survived the preceding fault.
healthy_session() {
    local log="$1"
    local code=0
    "$client" --connect "$addr" --analysis hb --index csst --shards 2 \
        --format binary --check-batch >"$logdir/$log" 2>&1 || code=$?
    if [[ "$code" != "1" ]] ||
        ! grep -q "service report matches the batch analyzer" "$logdir/$log"; then
        echo "fault_smoke: healthy session $log exited $code or mismatched" >&2
        cat "$logdir/$log" >&2
        fail=1
    fi
}

# --- Scenario 1: shard-worker panic mid-stream -----------------------
# The injected panic poisons the session's shard pipeline; the session
# must degrade to the sequential engine and still produce a report
# byte-identical to the batch analyzer, while a concurrent session and
# the server itself are unaffected.
echo "fault_smoke: scenario worker-panic"
start_server panic.serve --faults panic-worker=0@20
code=0
"$client" --connect "$addr" --analysis hb --index csst --shards 2 \
    --format binary --check-batch >"$logdir/panic.client" 2>&1 &
victim_pid=$!
healthy_session panic.healthy
wait "$victim_pid" || code=$?
if [[ "$code" != "1" ]] ||
    ! grep -q "service report matches the batch analyzer" "$logdir/panic.client"; then
    echo "fault_smoke: degraded session exited $code or mismatched batch" >&2
    cat "$logdir/panic.client" >&2
    fail=1
fi
if ! grep -q "degraded to sequential hb engine" "$logdir/panic.serve"; then
    echo "fault_smoke: server never reported the degraded session" >&2
    cat "$logdir/panic.serve" >&2
    fail=1
fi
stop_server panic.serve

# --- Scenario 2: corrupted EVENTS frame ------------------------------
# Frame corruption must surface as a structured `decode:` ERROR for
# that session only — never a panic, never a wedged server.
echo "fault_smoke: scenario corrupt-frame"
start_server corrupt.serve --faults corrupt-events=1
code=0
"$client" --connect "$addr" --analysis hb --shards 1 --format binary \
    >"$logdir/corrupt.client" 2>&1 || code=$?
if [[ "$code" != "2" ]] || ! grep -q "decode:" "$logdir/corrupt.client"; then
    echo "fault_smoke: corrupted session exited $code (want 2 with decode: error)" >&2
    cat "$logdir/corrupt.client" >&2
    fail=1
fi
healthy_session corrupt.healthy
stop_server corrupt.serve

# --- Scenario 3: slow client vs idle timeout -------------------------
# A client that stalls past the idle deadline is cut off with a typed
# `deadline:` ERROR; the server moves on.
echo "fault_smoke: scenario slow-client"
start_server slow.serve --idle-timeout-ms 300
code=0
"$client" --connect "$addr" --analysis hb --shards 1 --format binary \
    --stall-ms 1500 >"$logdir/slow.client" 2>&1 || code=$?
if [[ "$code" != "2" ]]; then
    echo "fault_smoke: stalled session exited $code (want 2)" >&2
    cat "$logdir/slow.client" >&2
    fail=1
fi
if ! grep -Eq "deadline|pipe|reset|closed" "$logdir/slow.client"; then
    echo "fault_smoke: stalled session died without a recognizable error" >&2
    cat "$logdir/slow.client" >&2
    fail=1
fi
healthy_session slow.healthy
stop_server slow.serve

# --- Scenario 4: unclean mid-stream disconnect -----------------------
# A client that vanishes after 50 events (no FINISH) must not disturb
# the server or subsequent sessions.
echo "fault_smoke: scenario mid-stream-disconnect"
start_server vanish.serve
code=0
"$client" --connect "$addr" --analysis hb --shards 2 --format binary \
    --disconnect-after 50 >"$logdir/vanish.client" 2>&1 || code=$?
if [[ "$code" != "0" ]] ||
    ! grep -q "disconnecting uncleanly" "$logdir/vanish.client"; then
    echo "fault_smoke: disconnecting client exited $code (want 0)" >&2
    cat "$logdir/vanish.client" >&2
    fail=1
fi
healthy_session vanish.healthy
stop_server vanish.serve

if [[ "$fail" != "0" ]]; then
    for f in "$logdir"/*; do
        echo "--- $f" >&2
        cat "$f" >&2
    done
    echo "fault_smoke FAILED" >&2
    exit 1
fi
echo "fault_smoke OK: worker-panic, corrupt-frame, slow-client, mid-stream-disconnect all contained"
