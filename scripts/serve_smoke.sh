#!/usr/bin/env bash
# End-to-end smoke test of the csst-serve service over loopback TCP:
# starts the server, runs two *concurrent* client sessions (sharded hb
# over the binary wire format, sharded race over text), each with
# --check-batch so the streamed report must match the local batch
# analyzer byte-for-byte, then asks the server to shut down and checks
# every exit code — including the server's own.
#
#   scripts/serve_smoke.sh [--release]
#
# CI runs it with --release against the already-built binaries.
set -euo pipefail

cd "$(dirname "$0")/.."

profile="debug"
cargo_flags=()
if [[ "${1:-}" == "--release" ]]; then
    profile="release"
    cargo_flags=(--release)
fi

cargo build "${cargo_flags[@]}" -p csst-serve --bins
serve="target/$profile/csst-serve"
client="target/$profile/csst-client"

logdir="$(mktemp -d)"
trap 'rm -rf "$logdir"' EXIT

# OS-chosen port; the server prints `listening on tcp:...` once bound.
"$serve" --listen tcp:127.0.0.1:0 >"$logdir/serve.out" 2>&1 &
server_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$logdir/serve.out" | head -n1)"
    [[ -n "$addr" ]] && break
    if ! kill -0 "$server_pid" 2>/dev/null; then
        echo "serve_smoke: server died before binding" >&2
        cat "$logdir/serve.out" >&2
        exit 1
    fi
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "serve_smoke: server never reported an address" >&2
    cat "$logdir/serve.out" >&2
    exit 1
fi
echo "serve_smoke: server at $addr (pid $server_pid)"

# Two sessions at once: different analyses, formats and shard counts.
# The hb demo contains races, so its session (and the matching batch
# run) exits 1 — that is the *expected* code, not a failure.
"$client" --connect "$addr" --analysis hb --index csst --shards 2 \
    --format binary --query events --query races --check-batch \
    >"$logdir/hb.out" 2>&1 &
hb_pid=$!
"$client" --connect "$addr" --analysis race --index csst --shards 4 \
    --format text --check-batch \
    >"$logdir/race.out" 2>&1 &
race_pid=$!

hb_code=0; wait "$hb_pid" || hb_code=$?
race_code=0; wait "$race_pid" || race_code=$?

fail=0
for session in hb race; do
    code_var="${session}_code"
    code="${!code_var}"
    if [[ "$code" != "1" ]]; then
        # Both demo traces are racy: exit 1 means "analysis ran, races
        # found, reports matched". 0 would mean the demo lost its
        # races; 2+ is a transport/usage error; --check-batch mismatch
        # also forces 1 but prints MISMATCH, checked below.
        echo "serve_smoke: $session session exited $code (want 1)" >&2
        fail=1
    fi
    if ! grep -q "check-batch: service report matches the batch analyzer" \
        "$logdir/$session.out"; then
        echo "serve_smoke: $session session did not pass --check-batch" >&2
        fail=1
    fi
    if grep -q "MISMATCH" "$logdir/$session.out"; then
        echo "serve_smoke: $session session reported a batch mismatch" >&2
        fail=1
    fi
done
if [[ "$fail" != "0" ]]; then
    for f in "$logdir"/*.out; do
        echo "--- $f" >&2
        cat "$f" >&2
    done
    exit 1
fi

# Unclean disconnect: a client that streams a prefix and vanishes
# without FINISH must not disturb the server — the next session (the
# shutdown driver below) still completes normally.
"$client" --connect "$addr" --analysis hb --shards 2 --format binary \
    --disconnect-after 50 >"$logdir/vanish.out" 2>&1 || {
    echo "serve_smoke: unclean-disconnect client exited $? (want 0)" >&2
    cat "$logdir/vanish.out" >&2
    exit 1
}

# Clean shutdown: the client's SHUTDOWN frame must stop the server,
# which must exit 0 after joining its session threads.
"$client" --connect "$addr" --analysis hb --shards 1 --format binary \
    --shutdown >"$logdir/shutdown.out" 2>&1 || {
    code=$?
    if [[ "$code" != "1" ]]; then
        echo "serve_smoke: shutdown driver exited $code (want 1: hb demo is racy)" >&2
        cat "$logdir/shutdown.out" >&2
        exit 1
    fi
}
server_code=0
wait "$server_pid" || server_code=$?
if [[ "$server_code" != "0" ]]; then
    echo "serve_smoke: server exited $server_code (want 0)" >&2
    cat "$logdir/serve.out" >&2
    exit 1
fi

echo "serve_smoke OK: two concurrent sessions matched the batch analyzer, unclean disconnect absorbed, clean shutdown"
