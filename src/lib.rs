//! # csst — workspace facade for the CSSTs reproduction
//!
//! A convenience re-export of the three library crates in this
//! workspace, so downstream users can depend on a single crate:
//!
//! * [`core`] (`csst-core`) — the CSST data structures and the
//!   baseline partial-order indexes;
//! * [`trace`] (`csst-trace`) — the trace substrate, interchange
//!   formats, and seeded workload generators;
//! * [`analyses`] (`csst-analyses`) — the paper's seven dynamic
//!   analyses, generic over any partial-order index.
//!
//! This root package also owns the workspace-level integration tests
//! (`tests/`) and the runnable examples (`examples/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use csst_analyses as analyses;
pub use csst_core as core;
pub use csst_trace as trace;
