//! End-to-end tests of the seven analyses on generated workloads,
//! checking cross-representation agreement and the qualitative
//! properties each analysis must have.

use csst_analyses::{c11, deadlock, linearizability, membug, race, tso, uaf};
use csst_core::{Csst, GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
use csst_trace::gen::{
    alloc_program, c11_program, lock_program, object_history, racy_program, tso_history,
    AllocProgramCfg, C11Cfg, LockProgramCfg, ObjectHistoryCfg, RacyProgramCfg, TsoCfg,
};

#[test]
fn race_prediction_all_structures_and_monotone_candidates() {
    let trace = racy_program(&RacyProgramCfg {
        threads: 6,
        events_per_thread: 400,
        vars: 6,
        locks: 2,
        lock_frac: 0.4,
        shared_frac: 0.25,
        seed: 1,
        ..Default::default()
    });
    let cfg = race::RaceCfg {
        max_candidates: 30,
        ..Default::default()
    };
    let a = race::predict::<IncrementalCsst>(&trace, &cfg);
    let b = race::predict::<SegTreeIndex>(&trace, &cfg);
    let c = race::predict::<VectorClockIndex>(&trace, &cfg);
    let d = race::predict::<GraphIndex>(&trace, &cfg);
    assert_eq!(a.races, b.races);
    assert_eq!(a.races, c.races);
    assert_eq!(a.races, d.races);
    assert!(a.candidates > 0, "workload must produce candidates");
    assert!(!a.races.is_empty(), "unprotected sharing must race");

    // Fully protected workloads must not race.
    let safe = racy_program(&RacyProgramCfg {
        threads: 6,
        events_per_thread: 300,
        vars: 4,
        locks: 1,
        lock_frac: 1.0,
        shared_frac: 0.3,
        seed: 2,
        ..Default::default()
    });
    let r = race::predict::<IncrementalCsst>(&safe, &cfg);
    assert!(
        r.races.is_empty(),
        "single-lock protection must kill all races: {:?}",
        r.races
    );
}

#[test]
fn deadlock_prediction_monotone_in_inversions() {
    let mk = |inversion_frac: f64| {
        lock_program(&LockProgramCfg {
            threads: 5,
            blocks_per_thread: 120,
            locks: 5,
            inversion_frac,
            guard_frac: 0.0,
            vars: 6,
            seed: 5,
        })
    };
    let cfg = deadlock::DeadlockCfg {
        max_patterns: 30,
        ..Default::default()
    };
    let none = deadlock::predict::<IncrementalCsst>(&mk(0.0), &cfg);
    assert!(
        none.deadlocks.is_empty(),
        "canonical lock order cannot deadlock"
    );
    let some = deadlock::predict::<IncrementalCsst>(&mk(0.3), &cfg);
    assert!(!some.deadlocks.is_empty(), "inversions must be detected");
    // All structures agree.
    let g = deadlock::predict::<GraphIndex>(&mk(0.3), &cfg);
    assert_eq!(some.deadlocks.len(), g.deadlocks.len());
}

#[test]
fn membug_and_uaf_consistency() {
    let trace = alloc_program(&AllocProgramCfg {
        threads: 5,
        objects: 120,
        derefs_per_object: 5,
        protected_frac: 0.3,
        confined_frac: 0.3,
        remote_free_frac: 0.6,
        locks: 2,
        seed: 8,
        max_events: None,
    });
    let mb = membug::predict::<IncrementalCsst>(
        &trace,
        &membug::MemBugCfg {
            max_candidates: 50,
            ..Default::default()
        },
    );
    let uf = uaf::generate::<IncrementalCsst>(&trace, &uaf::UafCfg::default());
    assert!(mb.candidates > 0);
    assert!(
        !uf.candidates.is_empty(),
        "unprotected remote frees must survive pruning"
    );
    assert!(uf.total_constraints > 0);
    // Every membug UAF pair must also be a UFO candidate (same
    // prefiltering, stricter witness).
    for bug in &mb.bugs {
        if let membug::MemBug::UseAfterFree {
            use_event,
            free_event,
            ..
        } = bug
        {
            assert!(
                uf.candidates
                    .iter()
                    .any(|c| c.use_event == *use_event && c.free_event == *free_event),
                "witnessed bug missing from UFO candidates"
            );
        }
    }
    // Fully confined + protected workloads are clean.
    let safe = alloc_program(&AllocProgramCfg {
        threads: 5,
        objects: 80,
        protected_frac: 0.5,
        confined_frac: 1.0,
        seed: 9,
        ..Default::default()
    });
    let mb_safe = membug::predict::<IncrementalCsst>(&safe, &membug::MemBugCfg::default());
    assert!(
        mb_safe.bugs.is_empty(),
        "confined/protected lifetimes are safe: {:?}",
        mb_safe.bugs
    );
}

#[test]
fn tso_checker_accepts_machine_output_and_rejects_mutations() {
    let trace = tso_history(&TsoCfg {
        threads: 5,
        events_per_thread: 300,
        vars: 4,
        seed: 13,
        ..Default::default()
    });
    let cfg = tso::TsoCheckCfg::default();
    let ok = tso::check::<IncrementalCsst>(&trace, &cfg);
    assert!(ok.consistent);

    // Mutate one read to observe a value from the future: must be
    // rejected (value has the wrong variable or breaks coherence).
    let mut mutated = csst_trace::Trace::new(trace.num_threads());
    let mut flipped = false;
    for (id, ev) in trace.iter_order() {
        let kind = match ev.kind {
            csst_trace::EventKind::Read { var, .. } if !flipped => {
                flipped = true;
                csst_trace::EventKind::Read {
                    var,
                    value: u64::MAX, // a value never written
                }
            }
            k => k,
        };
        mutated.push(id.thread, kind);
    }
    assert!(flipped);
    let bad = tso::check::<IncrementalCsst>(&mutated, &cfg);
    assert!(!bad.consistent, "value from nowhere must be rejected");
}

#[test]
fn c11_detector_structures_agree_and_sync_reduces_races() {
    let racy = c11_program(&C11Cfg {
        threads: 6,
        events_per_thread: 500,
        release_frac: 0.0, // all relaxed: no sw edges
        seed: 17,
        ..Default::default()
    });
    let synced = c11_program(&C11Cfg {
        threads: 6,
        events_per_thread: 500,
        release_frac: 1.0, // all release/acquire
        seed: 17,
        ..Default::default()
    });
    let cfg = c11::C11Cfg::default();
    let r_racy = c11::detect::<IncrementalCsst>(&racy, &cfg);
    let r_sync = c11::detect::<IncrementalCsst>(&synced, &cfg);
    assert!(
        r_sync.races.len() <= r_racy.races.len(),
        "release/acquire sync must not increase races ({} vs {})",
        r_sync.races.len(),
        r_racy.races.len()
    );
    assert!(r_sync.sw_edges > 0);
    let r_vc = c11::detect::<VectorClockIndex>(&synced, &cfg);
    assert_eq!(r_sync.races, r_vc.races);
}

#[test]
fn linearizability_clean_vs_violating_histories() {
    let mut violations = 0;
    for seed in 0..5u64 {
        let clean = object_history(&ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 40,
            key_range: 6,
            violation: false,
            seed,
        });
        let r = linearizability::analyze::<Csst>(&clean, &linearizability::LinCfg::default());
        assert!(
            matches!(r.verdict, linearizability::LinVerdict::Linearizable(_)),
            "seed {seed}: clean history rejected: {:?}",
            r.verdict
        );

        let bad = object_history(&ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 40,
            key_range: 6,
            violation: true,
            seed,
        });
        let r = linearizability::analyze::<Csst>(&bad, &linearizability::LinCfg::default());
        let g = linearizability::analyze::<GraphIndex>(&bad, &linearizability::LinCfg::default());
        assert_eq!(r.verdict, g.verdict, "seed {seed}");
        if matches!(r.verdict, linearizability::LinVerdict::Violation(_)) {
            violations += 1;
        }
    }
    assert!(violations >= 3, "corrupted histories mostly violate");
}

#[test]
fn linearization_order_respects_spec() {
    let history = object_history(&ObjectHistoryCfg {
        threads: 4,
        ops_per_thread: 25,
        key_range: 4,
        violation: false,
        seed: 33,
    });
    let r = linearizability::analyze::<Csst>(&history, &linearizability::LinCfg::default());
    let linearizability::LinVerdict::Linearizable(order) = &r.verdict else {
        panic!("clean history must linearize");
    };
    // Replaying the produced order against a sequential set must
    // reproduce every recorded result.
    let ops = linearizability::operations(&history);
    let by_id: std::collections::HashMap<_, _> = ops.iter().map(|o| (o.op, o)).collect();
    let mut set = std::collections::HashSet::new();
    for opid in order {
        let op = by_id[opid];
        let result = match op.method {
            csst_trace::Method::Add => set.insert(op.arg) as u64,
            csst_trace::Method::Remove => set.remove(&op.arg) as u64,
            csst_trace::Method::Contains => set.contains(&op.arg) as u64,
        };
        assert_eq!(result, op.result, "op {opid:?} result mismatch in replay");
    }
}

/// Satellite smoke test: every one of the seven analyses runs
/// end-to-end on a *small* seeded trace, twice, and must produce the
/// same verdict both times (the generators and analyses are fully
/// deterministic in their seeds), with the expected qualitative
/// outcome on each workload.
#[test]
fn seven_analyses_smoke_deterministic() {
    // 1. Race prediction: unprotected sharing on a tiny trace.
    let racy = || {
        racy_program(&RacyProgramCfg {
            threads: 3,
            events_per_thread: 80,
            vars: 3,
            locks: 1,
            lock_frac: 0.2,
            shared_frac: 0.4,
            seed: 42,
            ..Default::default()
        })
    };
    let race_cfg = race::RaceCfg::default();
    let r1 = race::predict::<IncrementalCsst>(&racy(), &race_cfg);
    let r2 = race::predict::<IncrementalCsst>(&racy(), &race_cfg);
    assert_eq!(r1.races, r2.races, "race verdict must be deterministic");
    assert_eq!(r1.candidates, r2.candidates);
    assert!(!r1.races.is_empty(), "mostly-unlocked sharing must race");

    // 2. Deadlock prediction: inverted lock order.
    let locks = || {
        lock_program(&LockProgramCfg {
            threads: 3,
            blocks_per_thread: 40,
            locks: 3,
            inversion_frac: 0.4,
            guard_frac: 0.0,
            vars: 3,
            seed: 42,
        })
    };
    let dl_cfg = deadlock::DeadlockCfg::default();
    let d1 = deadlock::predict::<IncrementalCsst>(&locks(), &dl_cfg);
    let d2 = deadlock::predict::<IncrementalCsst>(&locks(), &dl_cfg);
    assert_eq!(
        d1.deadlocks, d2.deadlocks,
        "deadlock verdict must be deterministic"
    );
    assert!(
        !d1.deadlocks.is_empty(),
        "inverted lock order must deadlock"
    );

    // 3 & 4. Memory-bug prediction and UAF query generation share the
    // allocator workload.
    let allocs = || {
        alloc_program(&AllocProgramCfg {
            threads: 3,
            objects: 40,
            derefs_per_object: 4,
            protected_frac: 0.2,
            confined_frac: 0.2,
            remote_free_frac: 0.7,
            locks: 1,
            seed: 42,
            max_events: None,
        })
    };
    let m1 = membug::predict::<IncrementalCsst>(&allocs(), &membug::MemBugCfg::default());
    let m2 = membug::predict::<IncrementalCsst>(&allocs(), &membug::MemBugCfg::default());
    assert_eq!(m1.bugs, m2.bugs, "membug verdict must be deterministic");
    assert!(m1.candidates > 0);
    let u1 = uaf::generate::<IncrementalCsst>(&allocs(), &uaf::UafCfg::default());
    let u2 = uaf::generate::<IncrementalCsst>(&allocs(), &uaf::UafCfg::default());
    assert_eq!(
        u1.candidates, u2.candidates,
        "UAF candidates must be deterministic"
    );
    assert_eq!(u1.total_constraints, u2.total_constraints);
    assert!(
        !u1.candidates.is_empty(),
        "remote frees must survive pruning"
    );

    // 5. TSO consistency: machine-generated histories are consistent.
    let tso_trace = || {
        tso_history(&TsoCfg {
            threads: 3,
            events_per_thread: 60,
            vars: 2,
            seed: 42,
            ..Default::default()
        })
    };
    let t1 = tso::check::<IncrementalCsst>(&tso_trace(), &tso::TsoCheckCfg::default());
    let t2 = tso::check::<IncrementalCsst>(&tso_trace(), &tso::TsoCheckCfg::default());
    assert_eq!(t1.consistent, t2.consistent);
    assert_eq!((t1.inserted, t1.rounds), (t2.inserted, t2.rounds));
    assert!(t1.consistent, "machine output must be TSO-consistent");

    // 6. C11 race detection: all-relaxed atomics leave plain accesses
    // unsynchronized.
    let c11_trace = || {
        c11_program(&C11Cfg {
            threads: 3,
            events_per_thread: 80,
            release_frac: 0.0,
            seed: 42,
            ..Default::default()
        })
    };
    let c1 = c11::detect::<IncrementalCsst>(&c11_trace(), &c11::C11Cfg::default());
    let c2 = c11::detect::<IncrementalCsst>(&c11_trace(), &c11::C11Cfg::default());
    assert_eq!(c1.races, c2.races, "C11 verdict must be deterministic");
    assert_eq!((c1.sw_edges, c1.fr_edges), (c2.sw_edges, c2.fr_edges));

    // 7. Linearizability: a clean history linearizes, with the same
    // witness order every run.
    let history = || {
        object_history(&ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 15,
            key_range: 3,
            violation: false,
            seed: 42,
        })
    };
    let l1 = linearizability::analyze::<Csst>(&history(), &linearizability::LinCfg::default());
    let l2 = linearizability::analyze::<Csst>(&history(), &linearizability::LinCfg::default());
    assert_eq!(
        l1.verdict, l2.verdict,
        "linearizability verdict must be deterministic"
    );
    assert!(
        matches!(l1.verdict, linearizability::LinVerdict::Linearizable(_)),
        "clean history must linearize: {:?}",
        l1.verdict
    );
}
