//! End-to-end tests of the seven analyses on generated workloads,
//! checking cross-representation agreement and the qualitative
//! properties each analysis must have.

use csst_analyses::{c11, deadlock, linearizability, membug, race, tso, uaf};
use csst_core::{Csst, GraphIndex, IncrementalCsst, SegTreeIndex, VectorClockIndex};
use csst_trace::gen::{
    alloc_program, c11_program, lock_program, object_history, racy_program, tso_history,
    AllocProgramCfg, C11Cfg, LockProgramCfg, ObjectHistoryCfg, RacyProgramCfg, TsoCfg,
};

#[test]
fn race_prediction_all_structures_and_monotone_candidates() {
    let trace = racy_program(&RacyProgramCfg {
        threads: 6,
        events_per_thread: 400,
        vars: 6,
        locks: 2,
        lock_frac: 0.4,
        shared_frac: 0.25,
        seed: 1,
        ..Default::default()
    });
    let cfg = race::RaceCfg {
        max_candidates: 30,
        ..Default::default()
    };
    let a = race::predict::<IncrementalCsst>(&trace, &cfg);
    let b = race::predict::<SegTreeIndex>(&trace, &cfg);
    let c = race::predict::<VectorClockIndex>(&trace, &cfg);
    let d = race::predict::<GraphIndex>(&trace, &cfg);
    assert_eq!(a.races, b.races);
    assert_eq!(a.races, c.races);
    assert_eq!(a.races, d.races);
    assert!(a.candidates > 0, "workload must produce candidates");
    assert!(!a.races.is_empty(), "unprotected sharing must race");

    // Fully protected workloads must not race.
    let safe = racy_program(&RacyProgramCfg {
        threads: 6,
        events_per_thread: 300,
        vars: 4,
        locks: 1,
        lock_frac: 1.0,
        shared_frac: 0.3,
        seed: 2,
        ..Default::default()
    });
    let r = race::predict::<IncrementalCsst>(&safe, &cfg);
    assert!(
        r.races.is_empty(),
        "single-lock protection must kill all races: {:?}",
        r.races
    );
}

#[test]
fn deadlock_prediction_monotone_in_inversions() {
    let mk = |inversion_frac: f64| {
        lock_program(&LockProgramCfg {
            threads: 5,
            blocks_per_thread: 120,
            locks: 5,
            inversion_frac,
            guard_frac: 0.0,
            vars: 6,
            seed: 5,
        })
    };
    let cfg = deadlock::DeadlockCfg {
        max_patterns: 30,
        ..Default::default()
    };
    let none = deadlock::predict::<IncrementalCsst>(&mk(0.0), &cfg);
    assert!(
        none.deadlocks.is_empty(),
        "canonical lock order cannot deadlock"
    );
    let some = deadlock::predict::<IncrementalCsst>(&mk(0.3), &cfg);
    assert!(!some.deadlocks.is_empty(), "inversions must be detected");
    // All structures agree.
    let g = deadlock::predict::<GraphIndex>(&mk(0.3), &cfg);
    assert_eq!(some.deadlocks.len(), g.deadlocks.len());
}

#[test]
fn membug_and_uaf_consistency() {
    let trace = alloc_program(&AllocProgramCfg {
        threads: 5,
        objects: 120,
        derefs_per_object: 5,
        protected_frac: 0.3,
        confined_frac: 0.3,
        remote_free_frac: 0.6,
        locks: 2,
        seed: 8,
    });
    let mb = membug::predict::<IncrementalCsst>(
        &trace,
        &membug::MemBugCfg {
            max_candidates: 50,
            ..Default::default()
        },
    );
    let uf = uaf::generate::<IncrementalCsst>(&trace, &uaf::UafCfg::default());
    assert!(mb.candidates > 0);
    assert!(
        !uf.candidates.is_empty(),
        "unprotected remote frees must survive pruning"
    );
    assert!(uf.total_constraints > 0);
    // Every membug UAF pair must also be a UFO candidate (same
    // prefiltering, stricter witness).
    for bug in &mb.bugs {
        if let membug::MemBug::UseAfterFree {
            use_event,
            free_event,
            ..
        } = bug
        {
            assert!(
                uf.candidates
                    .iter()
                    .any(|c| c.use_event == *use_event && c.free_event == *free_event),
                "witnessed bug missing from UFO candidates"
            );
        }
    }
    // Fully confined + protected workloads are clean.
    let safe = alloc_program(&AllocProgramCfg {
        threads: 5,
        objects: 80,
        protected_frac: 0.5,
        confined_frac: 1.0,
        seed: 9,
        ..Default::default()
    });
    let mb_safe = membug::predict::<IncrementalCsst>(&safe, &membug::MemBugCfg::default());
    assert!(
        mb_safe.bugs.is_empty(),
        "confined/protected lifetimes are safe: {:?}",
        mb_safe.bugs
    );
}

#[test]
fn tso_checker_accepts_machine_output_and_rejects_mutations() {
    let trace = tso_history(&TsoCfg {
        threads: 5,
        events_per_thread: 300,
        vars: 4,
        seed: 13,
        ..Default::default()
    });
    let cfg = tso::TsoCheckCfg::default();
    let ok = tso::check::<IncrementalCsst>(&trace, &cfg);
    assert!(ok.consistent);

    // Mutate one read to observe a value from the future: must be
    // rejected (value has the wrong variable or breaks coherence).
    let mut mutated = csst_trace::Trace::new(trace.num_threads());
    let mut flipped = false;
    for (id, ev) in trace.iter_order() {
        let kind = match ev.kind {
            csst_trace::EventKind::Read { var, .. } if !flipped => {
                flipped = true;
                csst_trace::EventKind::Read {
                    var,
                    value: u64::MAX, // a value never written
                }
            }
            k => k,
        };
        mutated.push(id.thread, kind);
    }
    assert!(flipped);
    let bad = tso::check::<IncrementalCsst>(&mutated, &cfg);
    assert!(!bad.consistent, "value from nowhere must be rejected");
}

#[test]
fn c11_detector_structures_agree_and_sync_reduces_races() {
    let racy = c11_program(&C11Cfg {
        threads: 6,
        events_per_thread: 500,
        release_frac: 0.0, // all relaxed: no sw edges
        seed: 17,
        ..Default::default()
    });
    let synced = c11_program(&C11Cfg {
        threads: 6,
        events_per_thread: 500,
        release_frac: 1.0, // all release/acquire
        seed: 17,
        ..Default::default()
    });
    let cfg = c11::C11Cfg::default();
    let r_racy = c11::detect::<IncrementalCsst>(&racy, &cfg);
    let r_sync = c11::detect::<IncrementalCsst>(&synced, &cfg);
    assert!(
        r_sync.races.len() <= r_racy.races.len(),
        "release/acquire sync must not increase races ({} vs {})",
        r_sync.races.len(),
        r_racy.races.len()
    );
    assert!(r_sync.sw_edges > 0);
    let r_vc = c11::detect::<VectorClockIndex>(&synced, &cfg);
    assert_eq!(r_sync.races, r_vc.races);
}

#[test]
fn linearizability_clean_vs_violating_histories() {
    let mut violations = 0;
    for seed in 0..5u64 {
        let clean = object_history(&ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 40,
            key_range: 6,
            violation: false,
            seed,
        });
        let r = linearizability::analyze::<Csst>(&clean, &linearizability::LinCfg::default());
        assert!(
            matches!(r.verdict, linearizability::LinVerdict::Linearizable(_)),
            "seed {seed}: clean history rejected: {:?}",
            r.verdict
        );

        let bad = object_history(&ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 40,
            key_range: 6,
            violation: true,
            seed,
        });
        let r = linearizability::analyze::<Csst>(&bad, &linearizability::LinCfg::default());
        let g = linearizability::analyze::<GraphIndex>(&bad, &linearizability::LinCfg::default());
        assert_eq!(r.verdict, g.verdict, "seed {seed}");
        if matches!(r.verdict, linearizability::LinVerdict::Violation(_)) {
            violations += 1;
        }
    }
    assert!(violations >= 3, "corrupted histories mostly violate");
}

#[test]
fn linearization_order_respects_spec() {
    let history = object_history(&ObjectHistoryCfg {
        threads: 4,
        ops_per_thread: 25,
        key_range: 4,
        violation: false,
        seed: 33,
    });
    let r = linearizability::analyze::<Csst>(&history, &linearizability::LinCfg::default());
    let linearizability::LinVerdict::Linearizable(order) = &r.verdict else {
        panic!("clean history must linearize");
    };
    // Replaying the produced order against a sequential set must
    // reproduce every recorded result.
    let ops = linearizability::operations(&history);
    let by_id: std::collections::HashMap<_, _> = ops.iter().map(|o| (o.op, o)).collect();
    let mut set = std::collections::HashSet::new();
    for opid in order {
        let op = by_id[opid];
        let result = match op.method {
            csst_trace::Method::Add => set.insert(op.arg) as u64,
            csst_trace::Method::Remove => set.remove(&op.arg) as u64,
            csst_trace::Method::Contains => set.contains(&op.arg) as u64,
        };
        assert_eq!(result, op.result, "op {opid:?} result mismatch in replay");
    }
}
