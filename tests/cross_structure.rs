//! Cross-structure stress tests: all five representations must agree
//! on every query under randomized workloads, including the fully
//! dynamic insert/delete interleavings only CSSTs, Graphs, and the
//! naive oracle support.

use csst_core::{
    AnchoredVectorClockIndex, Csst, GraphIndex, IncrementalCsst, NaiveIndex, NodeId,
    PartialOrderIndex, SegTreeIndex, ThreadId, VectorClockIndex,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_cross_edge(rng: &mut SmallRng, k: u32, cap: u32) -> (NodeId, NodeId) {
    let t1 = rng.gen_range(0..k);
    let mut t2 = rng.gen_range(0..k);
    while t2 == t1 {
        t2 = rng.gen_range(0..k);
    }
    (
        NodeId::new(t1, rng.gen_range(0..cap)),
        NodeId::new(t2, rng.gen_range(0..cap)),
    )
}

#[test]
fn incremental_structures_agree_under_random_inserts() {
    for seed in 0..6u64 {
        let (k, cap) = (6u32, 30u32);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut naive = NaiveIndex::with_capacity(k as usize, cap as usize);
        let mut csst = IncrementalCsst::with_capacity(k as usize, cap as usize);
        let mut st = SegTreeIndex::with_capacity(k as usize, cap as usize);
        let mut vc = VectorClockIndex::with_capacity(k as usize, cap as usize);
        let mut avc = AnchoredVectorClockIndex::with_capacity(k as usize, cap as usize);
        let mut dy = Csst::with_capacity(k as usize, cap as usize);
        for _ in 0..80 {
            let (u, v) = random_cross_edge(&mut rng, k, cap);
            if naive.reachable(v, u) {
                continue; // keep it a DAG
            }
            naive.insert_edge(u, v).unwrap();
            csst.insert_edge(u, v).unwrap();
            st.insert_edge(u, v).unwrap();
            vc.insert_edge(u, v).unwrap();
            avc.insert_edge(u, v).unwrap();
            dy.insert_edge(u, v).unwrap();
        }
        for _ in 0..500 {
            let (u, v) = random_cross_edge(&mut rng, k, cap);
            let expect = naive.reachable(u, v);
            assert_eq!(csst.reachable(u, v), expect, "seed {seed}: CSST {u}→{v}");
            assert_eq!(st.reachable(u, v), expect, "seed {seed}: ST {u}→{v}");
            assert_eq!(vc.reachable(u, v), expect, "seed {seed}: VC {u}→{v}");
            assert_eq!(avc.reachable(u, v), expect, "seed {seed}: aVC {u}→{v}");
            assert_eq!(dy.reachable(u, v), expect, "seed {seed}: dyn {u}→{v}");
            let t = ThreadId(rng.gen_range(0..k));
            let expect_s = naive.successor(u, t);
            assert_eq!(csst.successor(u, t), expect_s, "seed {seed}: succ");
            assert_eq!(st.successor(u, t), expect_s);
            assert_eq!(vc.successor(u, t), expect_s);
            assert_eq!(avc.successor(u, t), expect_s);
            assert_eq!(dy.successor(u, t), expect_s);
            let expect_p = naive.predecessor(u, t);
            assert_eq!(csst.predecessor(u, t), expect_p, "seed {seed}: pred");
            assert_eq!(st.predecessor(u, t), expect_p);
            assert_eq!(vc.predecessor(u, t), expect_p);
            assert_eq!(avc.predecessor(u, t), expect_p);
            assert_eq!(dy.predecessor(u, t), expect_p);
        }
    }
}

#[test]
fn dynamic_structures_agree_under_insert_delete_mix() {
    for seed in 10..16u64 {
        let (k, cap) = (5u32, 24u32);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut naive = NaiveIndex::with_capacity(k as usize, cap as usize);
        let mut csst = Csst::with_capacity(k as usize, cap as usize);
        let mut graph = GraphIndex::with_capacity(k as usize, cap as usize);
        let mut live: Vec<(NodeId, NodeId)> = Vec::new();
        for step in 0..400 {
            if !live.is_empty() && rng.gen_bool(0.35) {
                let (u, v) = live.swap_remove(rng.gen_range(0..live.len()));
                naive.delete_edge(u, v).unwrap();
                csst.delete_edge(u, v).unwrap();
                graph.delete_edge(u, v).unwrap();
            } else {
                let (u, v) = random_cross_edge(&mut rng, k, cap);
                if naive.reachable(v, u) {
                    continue;
                }
                naive.insert_edge(u, v).unwrap();
                csst.insert_edge(u, v).unwrap();
                graph.insert_edge(u, v).unwrap();
                live.push((u, v));
            }
            if step % 10 == 0 {
                for _ in 0..60 {
                    let (u, v) = random_cross_edge(&mut rng, k, cap);
                    let expect = naive.reachable(u, v);
                    assert_eq!(csst.reachable(u, v), expect, "seed {seed} step {step}");
                    assert_eq!(graph.reachable(u, v), expect, "seed {seed} step {step}");
                    let t = ThreadId(rng.gen_range(0..k));
                    assert_eq!(csst.successor(u, t), naive.successor(u, t));
                    assert_eq!(graph.predecessor(u, t), naive.predecessor(u, t));
                }
            }
        }
        // Drain all edges: everything must return to pure program order.
        for (u, v) in live.drain(..) {
            naive.delete_edge(u, v).unwrap();
            csst.delete_edge(u, v).unwrap();
            graph.delete_edge(u, v).unwrap();
        }
        for _ in 0..100 {
            let (u, v) = random_cross_edge(&mut rng, k, cap);
            let expect = u.thread == v.thread && u.pos <= v.pos;
            assert_eq!(csst.reachable(u, v), expect);
            assert_eq!(graph.reachable(u, v), expect);
        }
    }
}

#[test]
fn parallel_and_duplicate_edges_delete_cleanly() {
    let mut csst = Csst::with_capacity(3, 20);
    let mut graph = GraphIndex::with_capacity(3, 20);
    let u = NodeId::new(0, 5);
    let v = NodeId::new(1, 7);
    for _ in 0..3 {
        csst.insert_edge(u, v).unwrap();
        graph.insert_edge(u, v).unwrap();
    }
    for i in 0..3 {
        assert!(csst.reachable(u, v), "copy {i} still present");
        assert!(graph.reachable(u, v));
        csst.delete_edge(u, v).unwrap();
        graph.delete_edge(u, v).unwrap();
    }
    assert!(!csst.reachable(u, v));
    assert!(!graph.reachable(u, v));
    assert!(csst.delete_edge(u, v).is_err());
    assert!(graph.delete_edge(u, v).is_err());
}

#[test]
fn memory_ordering_between_structures_on_sparse_workload() {
    // With few cross edges over long chains, CSST memory must be far
    // below the dense segment-tree baseline and below dense VCs.
    let (k, cap) = (8usize, 50_000usize);
    let mut csst = IncrementalCsst::with_capacity(k, cap);
    let mut st = SegTreeIndex::with_capacity(k, cap);
    let mut vc = VectorClockIndex::with_capacity(k, cap);
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..64 {
        let t1 = rng.gen_range(0..k) as u32;
        let mut t2 = rng.gen_range(0..k) as u32;
        while t2 == t1 {
            t2 = rng.gen_range(0..k) as u32;
        }
        let i = rng.gen_range(0..cap as u32 - 1000);
        let u = NodeId::new(t1, i);
        let v = NodeId::new(t2, i + rng.gen_range(0..1000u32));
        if !csst.reachable(v, u) {
            let _ = csst.insert_edge_checked(u, v);
            let _ = st.insert_edge_checked(u, v);
            let _ = vc.insert_edge_checked(u, v);
        }
    }
    let (m_csst, m_st, m_vc) = (csst.memory_bytes(), st.memory_bytes(), vc.memory_bytes());
    assert!(
        m_csst * 10 < m_st,
        "CSST {m_csst}B should be ≪ dense ST {m_st}B"
    );
    assert!(
        m_csst < m_vc,
        "CSST {m_csst}B should be below dense VC {m_vc}B"
    );
}
