//! Integration tests spanning the core and trace crates: trace
//! construction → partial-order maintenance → linearization, plus
//! text-format round trips feeding the analyses.

use csst_core::{
    Csst, IncrementalCsst, NaiveIndex, NodeId, PartialOrderIndex, SegTreeIndex, ThreadId,
    VectorClockIndex,
};
use csst_trace::sc::{is_acyclic, linearize};
use csst_trace::{gen, text, EventKind, Trace, TraceBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds the observed order of a trace in a given representation:
/// fork/join plus reads-from edges.
fn observed_order<P: PartialOrderIndex>(trace: &Trace) -> P {
    let mut po = P::with_capacity(trace.num_threads().max(1), trace.max_chain_len().max(1));
    for (id, ev) in trace.iter_order() {
        match ev.kind {
            EventKind::Fork { child } if child != id.thread && trace.thread_len(child) > 0 => {
                let _ = po.insert_edge_checked(id, NodeId::new(child, 0));
            }
            EventKind::Join { child } => {
                let len = trace.thread_len(child);
                if child != id.thread && len > 0 {
                    let _ = po.insert_edge_checked(NodeId::new(child, (len - 1) as u32), id);
                }
            }
            _ => {}
        }
    }
    for (r, w) in trace.reads_from() {
        if r.thread != w.thread {
            let _ = po.insert_edge_checked(w, r);
        }
    }
    po
}

#[test]
fn generated_trace_roundtrips_through_text_format() {
    let trace = gen::racy_program(&gen::RacyProgramCfg {
        threads: 5,
        events_per_thread: 120,
        seed: 11,
        ..Default::default()
    });
    let serialized = text::write(&trace);
    let parsed = text::parse(&serialized).expect("self-produced text parses");
    assert_eq!(trace.order(), parsed.order());
    for (id, ev) in trace.iter_order() {
        assert_eq!(&ev.kind, parsed.kind(id));
    }
}

#[test]
fn observed_order_is_linearizable_back_to_a_valid_schedule() {
    // The observed order of any real trace must be acyclic, and its
    // linearization must respect all inserted edges.
    let trace = gen::racy_program(&gen::RacyProgramCfg {
        threads: 4,
        events_per_thread: 150,
        shared_frac: 0.5,
        seed: 3,
        ..Default::default()
    });
    let mut edges = Vec::new();
    for (r, w) in trace.reads_from() {
        if r.thread != w.thread {
            edges.push((w, r));
        }
    }
    let chain_lens: Vec<usize> = (0..trace.num_threads())
        .map(|t| trace.thread_len(ThreadId(t as u32)))
        .collect();
    assert!(is_acyclic(&chain_lens, &edges));
    let order = linearize(&chain_lens, &edges).expect("acyclic");
    assert_eq!(order.len(), trace.total_events());
    let pos = |n: NodeId| order.iter().position(|&x| x == n).unwrap();
    for (u, v) in edges {
        assert!(pos(u) < pos(v), "{u} must precede {v}");
    }
}

#[test]
fn all_representations_agree_on_observed_orders() {
    for seed in 0..4u64 {
        let trace = gen::racy_program(&gen::RacyProgramCfg {
            threads: 5,
            events_per_thread: 80,
            shared_frac: 0.4,
            seed,
            ..Default::default()
        });
        let csst: IncrementalCsst = observed_order(&trace);
        let st: SegTreeIndex = observed_order(&trace);
        let vc: VectorClockIndex = observed_order(&trace);
        let dy: Csst = observed_order(&trace);
        let naive: NaiveIndex = observed_order(&trace);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..300 {
            let t1 = rng.gen_range(0..trace.num_threads()) as u32;
            let t2 = rng.gen_range(0..trace.num_threads()) as u32;
            let u = NodeId::new(t1, rng.gen_range(0..trace.thread_len(ThreadId(t1))) as u32);
            let v = NodeId::new(t2, rng.gen_range(0..trace.thread_len(ThreadId(t2))) as u32);
            let expect = naive.reachable(u, v);
            assert_eq!(csst.reachable(u, v), expect, "CSST {u}→{v}");
            assert_eq!(st.reachable(u, v), expect, "ST {u}→{v}");
            assert_eq!(vc.reachable(u, v), expect, "VC {u}→{v}");
            assert_eq!(dy.reachable(u, v), expect, "dynamic CSST {u}→{v}");
        }
    }
}

#[test]
fn figure_1_walkthrough_with_deletions() {
    // The §1.1 consistency-analysis workflow: trial orderings are
    // inserted, contradicted, deleted, and replaced.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let e0 = b.on(0).write(x, 1);
    let e3 = b.on(1).write(x, 3);
    let _e4 = b.on(1).write(y, 4);
    let e5 = b.on(1).write(y, 5);
    let e1 = b.on(0).read(y, 5);
    let e2 = b.on(0).read(x, 3);
    let e6 = b.on(2).write(x, 3);
    let en = b.on(2).read(y, 4);
    let trace = b.build();

    let mut po = Csst::with_capacity(trace.num_threads(), trace.max_chain_len());
    po.insert_edge(e5, e1).unwrap();

    // Trial 1: e3 ↦ e2 with saturation edges.
    po.insert_edge_checked(e3, e2).unwrap();
    po.insert_edge_checked(e0, e3).unwrap();
    po.insert_edge_checked(e2, e6).unwrap();
    // en must precede e5 (it reads the older y); with trial 1 in
    // place this closes the paper's cycle.
    assert!(po.insert_edge_checked(en, e5).is_err(), "cycle expected");
    // Roll back and take the alternative writer.
    po.delete_edge(e2, e6).unwrap();
    po.delete_edge(e0, e3).unwrap();
    po.delete_edge(e3, e2).unwrap();
    po.insert_edge_checked(e6, e2).unwrap();
    po.insert_edge_checked(e0, e6).unwrap();
    po.insert_edge_checked(en, e5).unwrap();
    assert!(po.reachable(e0, e2));
    assert!(!po.reachable(e2, e3));
}

#[test]
fn tso_histories_parse_and_check_via_text() {
    let trace = gen::tso_history(&gen::TsoCfg {
        threads: 4,
        events_per_thread: 200,
        seed: 21,
        ..Default::default()
    });
    let reparsed = text::parse(&text::write(&trace)).unwrap();
    let report = csst_analyses::tso::check::<IncrementalCsst>(
        &reparsed,
        &csst_analyses::tso::TsoCheckCfg::default(),
    );
    assert!(report.consistent);
}

#[test]
fn deep_transitive_chains_across_many_threads() {
    // A long chain of cross-thread edges: every representation must
    // discover reachability through k−1 hops.
    let k = 12usize;
    let cap = 40usize;
    let mut csst = Csst::with_capacity(k, cap);
    let mut inc = IncrementalCsst::with_capacity(k, cap);
    let mut vc = VectorClockIndex::with_capacity(k, cap);
    for t in 0..(k - 1) as u32 {
        let u = NodeId::new(t, 2 * t + 1);
        let v = NodeId::new(t + 1, 2 * t);
        csst.insert_edge(u, v).unwrap();
        inc.insert_edge(u, v).unwrap();
        vc.insert_edge(u, v).unwrap();
    }
    let start = NodeId::new(0, 0);
    let end = NodeId::new((k - 1) as u32, (cap - 1) as u32);
    assert!(csst.reachable(start, end));
    assert!(inc.reachable(start, end));
    assert!(vc.reachable(start, end));
    let t_last = ThreadId((k - 1) as u32);
    assert_eq!(csst.successor(start, t_last), inc.successor(start, t_last));
    assert_eq!(csst.successor(start, t_last), vc.successor(start, t_last));
    assert_eq!(
        csst.predecessor(end, ThreadId(0)),
        inc.predecessor(end, ThreadId(0))
    );
}
