//! Property tests of the sharded ingest pipeline: for random generated
//! traces and every shard count, the sharded engines must report
//! *exactly* what their sequential counterparts report — same races in
//! the same order, same counters — windowed and unwindowed.
//!
//! This is the correctness contract of `csst-serve`'s multi-core
//! ingest (see `crates/serve`): sharding is an execution strategy, not
//! an approximation. Runs with `PROPTEST_CASES=16` in CI.

use csst_analyses::{hb, race};
use csst_core::{Csst, IncrementalCsst, VectorClockIndex};
use csst_serve::{ShardCfg, ShardedHb, ShardedRace};
use csst_trace::gen;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharded streaming HB detection equals the sequential detector
    /// for shard counts 1, 2 and 4: identical race lists (order
    /// included) and identical sync-edge counts.
    #[test]
    fn sharded_hb_matches_sequential(
        seed in 0u64..500,
        threads in 2usize..6,
        events_per_thread in 30usize..120,
        vars in 2usize..8,
        small_batches in 0u8..2,
    ) {
        let trace = gen::racy_program(&gen::RacyProgramCfg {
            threads,
            events_per_thread,
            vars,
            lock_frac: 0.5,
            shared_frac: 0.4,
            seed,
            ..Default::default()
        });
        let sequential = hb::detect::<VectorClockIndex>(&trace);
        for shards in [1usize, 2, 4] {
            // Small batches/epochs exercise the watermark protocol
            // mid-stream rather than only at the final flush.
            let cfg = if small_batches == 1 {
                ShardCfg { batch: 4, epoch_events: 16, ..ShardCfg::with_shards(shards) }
            } else {
                ShardCfg::with_shards(shards)
            };
            let sharded = ShardedHb::<VectorClockIndex>::run(&trace, cfg)
                .expect("fault-free run");
            prop_assert_eq!(&sharded.races, &sequential.races,
                "races diverge at {} shard(s)", shards);
            prop_assert_eq!(sharded.sync_edges, sequential.sync_edges,
                "sync edges diverge at {} shard(s)", shards);
            prop_assert_eq!(sharded.events as usize, trace.total_events());
        }
    }

    /// Sharded race prediction equals the sequential predictor for
    /// shard counts 1, 2 and 4 — unwindowed.
    #[test]
    fn sharded_race_matches_sequential_unwindowed(
        seed in 0u64..500,
        threads in 2usize..5,
        events_per_thread in 20usize..60,
    ) {
        let trace = gen::racy_program(&gen::RacyProgramCfg {
            threads,
            events_per_thread,
            vars: 4,
            lock_frac: 0.4,
            shared_frac: 0.5,
            seed,
            ..Default::default()
        });
        let cfg = race::RaceCfg::default();
        let sequential = race::predict::<IncrementalCsst>(&trace, &cfg);
        for shards in [1usize, 2, 4] {
            let sharded = ShardedRace::<IncrementalCsst>::run(&trace, cfg.clone(), shards)
                .expect("fault-free run");
            prop_assert_eq!(&sharded.races, &sequential.races,
                "races diverge at {} shard(s)", shards);
            prop_assert_eq!(sharded.candidates, sequential.candidates);
            prop_assert_eq!(sharded.base_inserted, sequential.base_inserted);
        }
    }

    /// Sharded race prediction equals the sequential predictor with
    /// tumbling windows (the edge-deleting retirement path).
    #[test]
    fn sharded_race_matches_sequential_windowed(
        seed in 0u64..500,
        threads in 2usize..5,
        events_per_thread in 20usize..60,
        window in 24usize..96,
    ) {
        let trace = gen::racy_program(&gen::RacyProgramCfg {
            threads,
            events_per_thread,
            vars: 4,
            lock_frac: 0.4,
            shared_frac: 0.5,
            seed,
            ..Default::default()
        });
        let cfg = race::RaceCfg {
            window: Some(window),
            ..Default::default()
        };
        let sequential = race::predict::<Csst>(&trace, &cfg);
        for shards in [1usize, 2, 4] {
            let sharded = ShardedRace::<Csst>::run(&trace, cfg.clone(), shards)
                .expect("fault-free run");
            prop_assert_eq!(&sharded.races, &sequential.races,
                "windowed races diverge at {} shard(s)", shards);
            prop_assert_eq!(sharded.candidates, sequential.candidates);
            prop_assert_eq!(sharded.window.windows, sequential.window.windows);
            prop_assert_eq!(sharded.window.deleted_edges, sequential.window.deleted_edges);
        }
    }
}
