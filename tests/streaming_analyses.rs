//! Acceptance test for the unified streaming `Analysis` trait: every
//! analysis, fed one event at a time through `Analysis::feed`, must
//! produce a report identical to its batch entry point on every
//! `gen::*` workload family.
//!
//! The batch entry points are thin wrappers over the trait, so this
//! also pins down that the wrappers stream faithfully (ordering,
//! thread assignment, configs) and that streaming runs are
//! deterministic.

use csst_analyses::{c11, deadlock, hb, linearizability, membug, race, tso, uaf, Analysis};
use csst_core::{Csst, IncrementalCsst, NodeId, PartialOrderIndex, VectorClockIndex};
use csst_trace::{gen, Trace};

/// Feeds `trace` event by event — the streaming side of the
/// comparison, deliberately not using `Analysis::run`.
fn stream<A: Analysis>(trace: &Trace, cfg: A::Cfg) -> A::Report {
    let mut analysis = A::new(cfg);
    for (id, ev) in trace.iter_order() {
        analysis.feed(id.thread, ev.kind);
    }
    analysis.finish()
}

fn racy(seed: u64) -> Trace {
    gen::racy_program(&gen::RacyProgramCfg {
        threads: 5,
        events_per_thread: 120,
        shared_frac: 0.3,
        lock_frac: 0.5,
        seed,
        ..Default::default()
    })
}

#[test]
fn race_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = racy(seed);
        let cfg = race::RaceCfg {
            max_candidates: 30,
            ..Default::default()
        };
        let batch = race::predict::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<race::RacePredictor<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.races, streamed.races, "seed {seed}");
        assert_eq!(batch.candidates, streamed.candidates);
        assert_eq!(batch.base_inserted, streamed.base_inserted);
    }
}

#[test]
fn hb_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = racy(seed);
        let batch = hb::detect::<VectorClockIndex>(&trace);
        let streamed = stream::<hb::HbDetector<VectorClockIndex>>(&trace, ());
        assert_eq!(batch.races, streamed.races, "seed {seed}");
        assert_eq!(batch.sync_edges, streamed.sync_edges);
        // The genuinely streaming detector holds no event buffer, so
        // its index must have witnessed exactly the trace's domain.
        assert_eq!(streamed.hb.chains(), trace.num_threads());
        for t in 0..trace.num_threads() {
            let t = csst_core::ThreadId(t as u32);
            assert_eq!(streamed.hb.chain_len(t), trace.thread_len(t));
        }
    }
}

#[test]
fn deadlock_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::lock_program(&gen::LockProgramCfg {
            threads: 4,
            blocks_per_thread: 80,
            inversion_frac: 0.1,
            seed,
            ..Default::default()
        });
        let cfg = deadlock::DeadlockCfg {
            max_patterns: 10,
            ..Default::default()
        };
        let batch = deadlock::predict::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<deadlock::DeadlockPredictor<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.patterns, streamed.patterns, "seed {seed}");
        assert_eq!(batch.deadlocks.len(), streamed.deadlocks.len());
    }
}

#[test]
fn membug_and_uaf_streaming_match_batch() {
    for seed in 0..3 {
        let trace = gen::alloc_program(&gen::AllocProgramCfg {
            threads: 4,
            objects: 120,
            remote_free_frac: 0.6,
            seed,
            ..Default::default()
        });
        let cfg = membug::MemBugCfg {
            max_candidates: 30,
            ..Default::default()
        };
        let batch = membug::predict::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<membug::MemBugPredictor<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.bugs, streamed.bugs, "seed {seed}");

        let cfg = uaf::UafCfg::default();
        let batch = uaf::generate::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<uaf::UafGenerator<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.candidates, streamed.candidates, "seed {seed}");
        assert_eq!(batch.pruned, streamed.pruned);
        assert_eq!(batch.total_constraints, streamed.total_constraints);
    }
}

#[test]
fn tso_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::tso_history(&gen::TsoCfg {
            threads: 4,
            events_per_thread: 150,
            seed,
            ..Default::default()
        });
        let cfg = tso::TsoCheckCfg::default();
        let batch = tso::check::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<tso::TsoChecker<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.consistent, streamed.consistent, "seed {seed}");
        assert_eq!(batch.inserted, streamed.inserted);
        assert_eq!(batch.rounds, streamed.rounds);
    }
}

#[test]
fn c11_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::c11_program(&gen::C11Cfg {
            threads: 5,
            events_per_thread: 300,
            middle_sync_frac: 0.1,
            seed,
            ..Default::default()
        });
        let cfg = c11::C11Cfg::default();
        let batch = c11::detect::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<c11::C11Detector<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.races, streamed.races, "seed {seed}");
        assert_eq!(batch.sw_edges, streamed.sw_edges);
        assert_eq!(batch.fr_edges, streamed.fr_edges);
    }
}

#[test]
fn linearizability_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::object_history(&gen::ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 60,
            violation: true,
            seed,
            ..Default::default()
        });
        let cfg = linearizability::LinCfg::default();
        let batch = linearizability::analyze::<Csst>(&trace, &cfg);
        let streamed = stream::<linearizability::LinAnalyzer<Csst>>(&trace, cfg.clone());
        assert_eq!(batch.verdict, streamed.verdict, "seed {seed}");
        assert_eq!(batch.steps, streamed.steps);
        assert_eq!(batch.backtracks, streamed.backtracks);
        assert_eq!(batch.inserted, streamed.inserted);
        assert_eq!(batch.deleted, streamed.deleted);
    }
}

// ---------------------------------------------------------------------------
// Windowed (bounded-memory) streaming
// ---------------------------------------------------------------------------
//
// With `window: Some(n)` the predictive analyses cut the stream into
// n-event tumbling windows, analyze each as an independent execution
// and retire its base-order edges via `delete_edge`. The tests below
// pin the two ends of the soundness contract: windowed == batch when
// the trace fits the window, and bounded buffering (peak ≤ n) with the
// deletion path genuinely exercised otherwise.

#[test]
fn windowed_equals_batch_when_trace_fits_window() {
    let trace = racy(7);
    let window = Some(trace.total_events() + 1);

    let batch = race::predict::<Csst>(&trace, &race::RaceCfg::default());
    let windowed = race::predict::<Csst>(
        &trace,
        &race::RaceCfg {
            window,
            ..Default::default()
        },
    );
    assert_eq!(batch.races, windowed.races);
    assert_eq!(batch.candidates, windowed.candidates);
    assert_eq!(batch.base_inserted, windowed.base_inserted);
    assert_eq!(windowed.window.windows, 0, "window never filled");

    let alloc = gen::alloc_program(&gen::AllocProgramCfg {
        threads: 4,
        objects: 60,
        remote_free_frac: 0.5,
        seed: 7,
        ..Default::default()
    });
    let window = Some(alloc.total_events() + 1);
    let batch = membug::predict::<Csst>(&alloc, &membug::MemBugCfg::default());
    let windowed = membug::predict::<Csst>(
        &alloc,
        &membug::MemBugCfg {
            window,
            ..Default::default()
        },
    );
    assert_eq!(batch.bugs, windowed.bugs);

    let batch = uaf::generate::<Csst>(&alloc, &uaf::UafCfg::default());
    let windowed = uaf::generate::<Csst>(
        &alloc,
        &uaf::UafCfg {
            window,
            ..Default::default()
        },
    );
    assert_eq!(batch.candidates, windowed.candidates);
    assert_eq!(batch.pruned, windowed.pruned);
    assert_eq!(batch.total_constraints, windowed.total_constraints);

    let locks = gen::lock_program(&gen::LockProgramCfg {
        threads: 4,
        blocks_per_thread: 40,
        inversion_frac: 0.2,
        seed: 3,
        ..Default::default()
    });
    let batch = deadlock::predict::<Csst>(&locks, &deadlock::DeadlockCfg::default());
    let windowed = deadlock::predict::<Csst>(
        &locks,
        &deadlock::DeadlockCfg {
            window: Some(locks.total_events() + 1),
            ..Default::default()
        },
    );
    assert_eq!(batch.patterns, windowed.patterns);
    assert_eq!(batch.deadlocks.len(), windowed.deadlocks.len());

    let history = gen::tso_history(&gen::TsoCfg {
        threads: 4,
        events_per_thread: 100,
        seed: 11,
        ..Default::default()
    });
    let batch = tso::check::<Csst>(&history, &tso::TsoCheckCfg::default());
    let windowed = tso::check::<Csst>(
        &history,
        &tso::TsoCheckCfg {
            window: Some(history.total_events() + 1),
            ..Default::default()
        },
    );
    assert_eq!(batch.consistent, windowed.consistent);
    assert_eq!(batch.inserted, windowed.inserted);
    assert_eq!(batch.rounds, windowed.rounds);

    let objects = gen::object_history(&gen::ObjectHistoryCfg {
        threads: 3,
        ops_per_thread: 40,
        violation: true,
        seed: 5,
        ..Default::default()
    });
    let batch = linearizability::analyze::<Csst>(&objects, &linearizability::LinCfg::default());
    let windowed = linearizability::analyze::<Csst>(
        &objects,
        &linearizability::LinCfg {
            window: Some(objects.total_events() + 1),
            ..Default::default()
        },
    );
    assert_eq!(batch.verdict, windowed.verdict);
    assert_eq!(batch.steps, windowed.steps);
    assert_eq!(batch.inserted, windowed.inserted);
}

/// The acceptance criterion of the windowing layer: peak buffered
/// events never exceed the window, retirement actually deletes the
/// window's base-order edges, and the run stays sound (a subset of
/// per-window batch reports — pinned exactly in windowed_proptests).
#[test]
fn windowed_runs_bound_peak_buffered_events() {
    const WINDOW: usize = 100;
    let trace = racy(1);
    assert!(trace.total_events() >= 5 * WINDOW, "workload must overflow");

    let unwindowed = race::predict::<Csst>(&trace, &race::RaceCfg::default());
    assert_eq!(
        unwindowed.window.peak_buffered,
        trace.total_events(),
        "unwindowed prediction buffers the whole trace"
    );
    assert_eq!(unwindowed.window.deleted_edges, 0);

    let cfg = race::RaceCfg {
        window: Some(WINDOW),
        max_candidates: usize::MAX,
        ..Default::default()
    };
    let windowed = race::predict::<Csst>(&trace, &cfg);
    let stats = windowed.window;
    assert!(
        stats.peak_buffered <= WINDOW,
        "peak buffered {} must stay within the window {WINDOW}",
        stats.peak_buffered
    );
    assert_eq!(stats.windows, trace.total_events() / WINDOW);
    assert_eq!(stats.retired_events, stats.windows * WINDOW);
    assert!(
        stats.deleted_edges > 0,
        "retirement must exercise the deletion path"
    );
    // Every reported race is window-local: both endpoints fell into
    // the same tumbling window, so no report spans a boundary.
    for &(a, b) in &windowed.races {
        let (pa, pb) = (trace.trace_pos(a) as usize, trace.trace_pos(b) as usize);
        assert_eq!(pa / WINDOW, pb / WINDOW, "race {a} {b} spans windows");
    }
}

/// On window-respecting traces — here: every critical section closes
/// inside the window that opened it — windowed runs report exactly
/// what per-window batch analysis reports: a fully protected program
/// stays race-free.
#[test]
fn windowed_runs_stay_sound_on_window_respecting_protected_programs() {
    use csst_trace::TraceBuilder;

    // Two threads alternating *complete* lock-protected sections of
    // three events each: with a window that is a multiple of 6, no
    // section ever straddles a boundary.
    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let m = b.lock("m");
    for i in 0..120u64 {
        let t = (i % 2) as u32;
        b.on(t).acquire(m);
        b.on(t).write(x, i);
        b.on(t).release(m);
    }
    let safe = b.build();
    for window in [6, 24, 60] {
        let r = race::predict::<Csst>(
            &safe,
            &race::RaceCfg {
                window: Some(window),
                max_candidates: usize::MAX,
                ..Default::default()
            },
        );
        assert!(r.races.is_empty(), "window {window}: {:?}", r.races);
    }
}

/// The flip side of the contract, pinned so it stays deliberate: a
/// window cut *inside* a critical section drops the acquire from that
/// window's observation, so the accesses legitimately race under the
/// windowed view (each window is an independent execution).
#[test]
fn window_boundary_through_critical_section_drops_protection() {
    use csst_trace::TraceBuilder;

    let mut b = TraceBuilder::new();
    let x = b.var("x");
    let y = b.var("y");
    let m = b.lock("m");
    // Window 1 (events 0–3): padding plus t0's acquire — the window
    // boundary cuts t0's critical section right after the acquire.
    b.on(2).write(y, 1);
    b.on(2).write(y, 2);
    b.on(2).write(y, 3);
    b.on(0).acquire(m);
    // Window 2 (events 4–7): t0's write arrives with its acquire
    // retired, t1's conflicting write inside its own section.
    b.on(0).write(x, 1);
    b.on(0).release(m);
    b.on(1).acquire(m);
    b.on(1).write(x, 2);
    // Window 3 (event 8).
    b.on(1).release(m);
    let trace = b.build();

    let batch = race::predict::<Csst>(&trace, &race::RaceCfg::default());
    assert!(batch.races.is_empty(), "batch sees the protection");

    let windowed = race::predict::<Csst>(
        &trace,
        &race::RaceCfg {
            window: Some(4),
            ..Default::default()
        },
    );
    assert_eq!(
        windowed.races.len(),
        1,
        "the second window starts mid-section: its observation is
         unprotected, exactly as the soundness contract states"
    );
}

/// The genuinely online analyses never buffer: c11's windowed form only
/// bounds the live synchronization state.
#[test]
fn windowed_c11_buffers_nothing_and_stays_window_local() {
    let trace = gen::c11_program(&gen::C11Cfg {
        threads: 5,
        events_per_thread: 200,
        middle_sync_frac: 0.1,
        seed: 4,
        ..Default::default()
    });
    let batch = c11::detect::<Csst>(&trace, &c11::C11Cfg::default());
    assert_eq!(batch.window.peak_buffered, 0, "c11 is genuinely online");

    let windowed = c11::detect::<Csst>(
        &trace,
        &c11::C11Cfg {
            window: Some(150),
            ..Default::default()
        },
    );
    assert_eq!(windowed.window.peak_buffered, 0);
    assert!(windowed.window.deleted_edges > 0 || batch.sw_edges == 0);
    // Window-local sync state: no reported race pairs events of
    // different windows.
    for &(a, b) in &windowed.races {
        let (pa, pb) = (trace.trace_pos(a) as usize, trace.trace_pos(b) as usize);
        assert_eq!(pa / 150, pb / 150, "race {a} {b} spans windows");
    }
}

/// Windowed linearizability carries the specification state across
/// windows: a clean history of non-overlapping operations linearizes
/// under any window size, and a window-local violation is still found.
#[test]
fn windowed_linearizability_carries_state_across_windows() {
    use csst_trace::{Method, TraceBuilder};

    // Sequential-per-op history: add/contains/remove cycles over three
    // threads, each op's invoke and response adjacent, so every window
    // cut falls between operations (any prefix of responses is a legal
    // linearization prefix).
    let mut b = TraceBuilder::new();
    for round in 0..20u64 {
        for t in 0..3u32 {
            let key = u64::from(t) * 100 + round;
            let (_, op) = b.on(t).invoke(Method::Add, key);
            b.on(t).respond(op, 1);
            let (_, op) = b.on(t).invoke(Method::Contains, key);
            b.on(t).respond(op, 1);
            let (_, op) = b.on(t).invoke(Method::Remove, key);
            b.on(t).respond(op, 1);
        }
    }
    let trace = b.build();
    for window in [10, 36, 97] {
        let r = linearizability::analyze::<Csst>(
            &trace,
            &linearizability::LinCfg {
                window: Some(window),
                ..Default::default()
            },
        );
        assert!(
            matches!(r.verdict, linearizability::LinVerdict::Linearizable(_)),
            "window {window}: {:?}",
            r.verdict
        );
        assert!(r.window.peak_buffered <= window);
    }

    // State must genuinely carry: add(7) in the first window, the
    // matching contains(7)/remove(7) far beyond it. A violating
    // remove of a never-added key is still caught, windowed.
    let mut b = TraceBuilder::new();
    let (_, op) = b.on(0).invoke(Method::Add, 7);
    b.on(0).respond(op, 1);
    for i in 0..30u64 {
        let (_, op) = b.on(1).invoke(Method::Add, 1000 + i);
        b.on(1).respond(op, 1);
    }
    let (_, op) = b.on(0).invoke(Method::Contains, 7);
    b.on(0).respond(op, 1);
    let trace = b.build();
    let r = linearizability::analyze::<Csst>(
        &trace,
        &linearizability::LinCfg {
            window: Some(8),
            ..Default::default()
        },
    );
    assert!(
        matches!(r.verdict, linearizability::LinVerdict::Linearizable(_)),
        "carried state must remember add(7): {:?}",
        r.verdict
    );

    let mut b = TraceBuilder::new();
    let (_, op) = b.on(0).invoke(Method::Remove, 5);
    b.on(0).respond(op, 1); // removing from an empty set "succeeds"
    let trace = b.build();
    let r = linearizability::analyze::<Csst>(
        &trace,
        &linearizability::LinCfg {
            window: Some(4),
            ..Default::default()
        },
    );
    assert!(
        matches!(r.verdict, linearizability::LinVerdict::Violation(_)),
        "{:?}",
        r.verdict
    );
}

/// Regression: a fork arriving in a later window than the child's
/// start must still order the window's events — the edge targets the
/// child's first event *of the current window*, matching the
/// per-window batch oracle exactly.
#[test]
fn cross_window_fork_orders_the_forks_window() {
    use csst_trace::TraceBuilder;

    let mut b = TraceBuilder::new();
    let x = b.var("x");
    // Window 1 (events 0–3): the child (t1) already runs.
    b.on(1).write(x, 1);
    b.on(0).write(x, 2);
    b.on(0).write(x, 3);
    b.on(0).write(x, 4);
    // Window 2 (events 4–6): parent writes, forks t1, child writes —
    // within this window the fork orders t0's accesses before t1's.
    b.on(0).write(x, 5);
    b.on(0).fork(1);
    b.on(1).write(x, 6);
    let trace = b.build();

    let cfg = race::RaceCfg {
        window: Some(4),
        max_candidates: usize::MAX,
        ..Default::default()
    };
    let windowed = race::predict::<Csst>(&trace, &cfg);
    // Per-window batch oracle: window 2's sub-trace is
    // w(t0) fork w(t1), whose fork edge orders the conflicting pair —
    // the windowed run must agree and find no window-2 race.
    assert!(
        !windowed
            .races
            .iter()
            .any(|&(a, b)| trace.trace_pos(a) >= 4 && trace.trace_pos(b) >= 4),
        "fork must order its own window: {:?}",
        windowed.races
    );
    // Window 1's unprotected pair (events 0 and 1) is still reported.
    assert!(
        windowed
            .races
            .contains(&(NodeId::new(1, 0), NodeId::new(0, 0))),
        "{:?}",
        windowed.races
    );
}
