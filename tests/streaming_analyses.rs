//! Acceptance test for the unified streaming `Analysis` trait: every
//! analysis, fed one event at a time through `Analysis::feed`, must
//! produce a report identical to its batch entry point on every
//! `gen::*` workload family.
//!
//! The batch entry points are thin wrappers over the trait, so this
//! also pins down that the wrappers stream faithfully (ordering,
//! thread assignment, configs) and that streaming runs are
//! deterministic.

use csst_analyses::{c11, deadlock, hb, linearizability, membug, race, tso, uaf, Analysis};
use csst_core::{Csst, IncrementalCsst, PartialOrderIndex, VectorClockIndex};
use csst_trace::{gen, Trace};

/// Feeds `trace` event by event — the streaming side of the
/// comparison, deliberately not using `Analysis::run`.
fn stream<A: Analysis>(trace: &Trace, cfg: A::Cfg) -> A::Report {
    let mut analysis = A::new(cfg);
    for (id, ev) in trace.iter_order() {
        analysis.feed(id.thread, ev.kind);
    }
    analysis.finish()
}

fn racy(seed: u64) -> Trace {
    gen::racy_program(&gen::RacyProgramCfg {
        threads: 5,
        events_per_thread: 120,
        shared_frac: 0.3,
        lock_frac: 0.5,
        seed,
        ..Default::default()
    })
}

#[test]
fn race_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = racy(seed);
        let cfg = race::RaceCfg {
            max_candidates: 30,
            ..Default::default()
        };
        let batch = race::predict::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<race::RacePredictor<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.races, streamed.races, "seed {seed}");
        assert_eq!(batch.candidates, streamed.candidates);
        assert_eq!(batch.base_inserted, streamed.base_inserted);
    }
}

#[test]
fn hb_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = racy(seed);
        let batch = hb::detect::<VectorClockIndex>(&trace);
        let streamed = stream::<hb::HbDetector<VectorClockIndex>>(&trace, ());
        assert_eq!(batch.races, streamed.races, "seed {seed}");
        assert_eq!(batch.sync_edges, streamed.sync_edges);
        // The genuinely streaming detector holds no event buffer, so
        // its index must have witnessed exactly the trace's domain.
        assert_eq!(streamed.hb.chains(), trace.num_threads());
        for t in 0..trace.num_threads() {
            let t = csst_core::ThreadId(t as u32);
            assert_eq!(streamed.hb.chain_len(t), trace.thread_len(t));
        }
    }
}

#[test]
fn deadlock_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::lock_program(&gen::LockProgramCfg {
            threads: 4,
            blocks_per_thread: 80,
            inversion_frac: 0.1,
            seed,
            ..Default::default()
        });
        let cfg = deadlock::DeadlockCfg {
            max_patterns: 10,
            ..Default::default()
        };
        let batch = deadlock::predict::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<deadlock::DeadlockPredictor<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.patterns, streamed.patterns, "seed {seed}");
        assert_eq!(batch.deadlocks.len(), streamed.deadlocks.len());
    }
}

#[test]
fn membug_and_uaf_streaming_match_batch() {
    for seed in 0..3 {
        let trace = gen::alloc_program(&gen::AllocProgramCfg {
            threads: 4,
            objects: 120,
            remote_free_frac: 0.6,
            seed,
            ..Default::default()
        });
        let cfg = membug::MemBugCfg {
            max_candidates: 30,
            ..Default::default()
        };
        let batch = membug::predict::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<membug::MemBugPredictor<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.bugs, streamed.bugs, "seed {seed}");

        let cfg = uaf::UafCfg::default();
        let batch = uaf::generate::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<uaf::UafGenerator<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.candidates, streamed.candidates, "seed {seed}");
        assert_eq!(batch.pruned, streamed.pruned);
        assert_eq!(batch.total_constraints, streamed.total_constraints);
    }
}

#[test]
fn tso_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::tso_history(&gen::TsoCfg {
            threads: 4,
            events_per_thread: 150,
            seed,
            ..Default::default()
        });
        let cfg = tso::TsoCheckCfg::default();
        let batch = tso::check::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<tso::TsoChecker<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.consistent, streamed.consistent, "seed {seed}");
        assert_eq!(batch.inserted, streamed.inserted);
        assert_eq!(batch.rounds, streamed.rounds);
    }
}

#[test]
fn c11_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::c11_program(&gen::C11Cfg {
            threads: 5,
            events_per_thread: 300,
            middle_sync_frac: 0.1,
            seed,
            ..Default::default()
        });
        let cfg = c11::C11Cfg::default();
        let batch = c11::detect::<IncrementalCsst>(&trace, &cfg);
        let streamed = stream::<c11::C11Detector<IncrementalCsst>>(&trace, cfg.clone());
        assert_eq!(batch.races, streamed.races, "seed {seed}");
        assert_eq!(batch.sw_edges, streamed.sw_edges);
        assert_eq!(batch.fr_edges, streamed.fr_edges);
    }
}

#[test]
fn linearizability_streaming_matches_batch() {
    for seed in 0..3 {
        let trace = gen::object_history(&gen::ObjectHistoryCfg {
            threads: 3,
            ops_per_thread: 60,
            violation: true,
            seed,
            ..Default::default()
        });
        let cfg = linearizability::LinCfg::default();
        let batch = linearizability::analyze::<Csst>(&trace, &cfg);
        let streamed = stream::<linearizability::LinAnalyzer<Csst>>(&trace, cfg.clone());
        assert_eq!(batch.verdict, streamed.verdict, "seed {seed}");
        assert_eq!(batch.steps, streamed.steps);
        assert_eq!(batch.backtracks, streamed.backtracks);
        assert_eq!(batch.inserted, streamed.inserted);
        assert_eq!(batch.deleted, streamed.deleted);
    }
}
