//! Property tests of the bounded-memory windowing layer.
//!
//! The windowed form of a predictive analysis cuts the stream into
//! n-event tumbling windows, analyzes each as an independent execution
//! and retires its base-order edges through `delete_edge`. These tests
//! interleave `feed` with window retirement (by streaming random
//! traces through windowed analyses) and cross-validate every windowed
//! report against the batch oracle *restricted to in-window event
//! pairs*: the batch core run on each window's sub-trace, with local
//! ids remapped to the global ids the windowed run reports.
//!
//! They also pin the resource half of the contract: peak buffered
//! events never exceed the window and retirement genuinely deletes the
//! inserted edges.

use csst_analyses::{membug, race, tso, uaf};
use csst_core::{Csst, NodeId};
use csst_trace::{gen, Trace};
use proptest::prelude::*;

/// Cuts `trace` into `n`-event tumbling windows. Each window is
/// returned as its own sub-trace together with the per-thread global
/// offsets of its first events, so window-local ids can be remapped to
/// global ones (`⟨t, i⟩ → ⟨t, offset[t] + i⟩`).
fn windows_of(trace: &Trace, n: usize) -> Vec<(Trace, Vec<u32>)> {
    let threads = trace.num_threads();
    let mut seen = vec![0u32; threads];
    let mut out = Vec::new();
    let mut current = Trace::new(threads);
    let mut offsets = seen.clone();
    for (i, (id, ev)) in trace.iter_order().enumerate() {
        if i > 0 && i % n == 0 {
            out.push((
                std::mem::replace(&mut current, Trace::new(threads)),
                offsets,
            ));
            offsets = seen.clone();
        }
        current.push(id.thread, ev.kind);
        seen[id.thread.index()] += 1;
    }
    if current.total_events() > 0 {
        out.push((current, offsets));
    }
    out
}

fn to_global(offsets: &[u32], id: NodeId) -> NodeId {
    NodeId::new(id.thread, id.pos + offsets[id.thread.index()])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Windowed race prediction reports exactly the batch oracle's
    /// findings per window — no report spans a boundary, none is
    /// invented, none inside a window is lost — and the buffer stays
    /// bounded.
    #[test]
    fn windowed_race_matches_per_window_batch_oracle(
        seed in 0u64..500,
        threads in 2usize..5,
        events_per_thread in 30usize..70,
        window in 20usize..120,
    ) {
        let trace = gen::racy_program(&gen::RacyProgramCfg {
            threads,
            events_per_thread,
            shared_frac: 0.4,
            lock_frac: 0.4,
            seed,
            ..Default::default()
        });
        let cfg = race::RaceCfg {
            max_candidates: usize::MAX,
            window: Some(window),
            ..Default::default()
        };
        let windowed = race::predict::<Csst>(&trace, &cfg);

        let oracle_cfg = race::RaceCfg {
            max_candidates: usize::MAX,
            ..Default::default()
        };
        let mut expected_races = Vec::new();
        let mut expected_candidates = 0usize;
        for (sub, offsets) in windows_of(&trace, window) {
            let r = race::predict::<Csst>(&sub, &oracle_cfg);
            expected_candidates += r.candidates;
            expected_races.extend(
                r.races
                    .iter()
                    .map(|&(a, b)| (to_global(&offsets, a), to_global(&offsets, b))),
            );
        }
        prop_assert_eq!(&windowed.races, &expected_races);
        prop_assert_eq!(windowed.candidates, expected_candidates);
        prop_assert!(windowed.window.peak_buffered <= window);
        let full_windows = trace.total_events() / window;
        prop_assert_eq!(windowed.window.windows, full_windows);
        prop_assert_eq!(windowed.window.retired_events, full_windows * window);
    }

    /// Same cross-validation for the memory-bug predictor and the UFO
    /// query generator (which additionally saturates per window).
    #[test]
    fn windowed_membug_and_uaf_match_per_window_batch_oracle(
        seed in 0u64..500,
        window in 25usize..150,
    ) {
        let trace = gen::alloc_program(&gen::AllocProgramCfg {
            threads: 4,
            objects: 40,
            derefs_per_object: 3,
            remote_free_frac: 0.5,
            seed,
            ..Default::default()
        });

        let windowed = membug::predict::<Csst>(&trace, &membug::MemBugCfg {
            max_candidates: usize::MAX,
            window: Some(window),
            ..Default::default()
        });
        let mut expected = Vec::new();
        for (sub, offsets) in windows_of(&trace, window) {
            let r = membug::predict::<Csst>(&sub, &membug::MemBugCfg {
                max_candidates: usize::MAX,
                ..Default::default()
            });
            expected.extend(r.bugs.iter().map(|bug| match *bug {
                membug::MemBug::UseAfterFree { obj, use_event, free_event } => {
                    membug::MemBug::UseAfterFree {
                        obj,
                        use_event: to_global(&offsets, use_event),
                        free_event: to_global(&offsets, free_event),
                    }
                }
                membug::MemBug::DoubleFree { obj, first, second } => membug::MemBug::DoubleFree {
                    obj,
                    first: to_global(&offsets, first),
                    second: to_global(&offsets, second),
                },
            }));
        }
        prop_assert_eq!(&windowed.bugs, &expected);
        prop_assert!(windowed.window.peak_buffered <= window);

        let windowed = uaf::generate::<Csst>(&trace, &uaf::UafCfg {
            window: Some(window),
            ..Default::default()
        });
        let mut expected = Vec::new();
        let mut pruned = 0usize;
        let mut constraints = 0usize;
        for (sub, offsets) in windows_of(&trace, window) {
            let r = uaf::generate::<Csst>(&sub, &uaf::UafCfg::default());
            pruned += r.pruned;
            constraints += r.total_constraints;
            expected.extend(r.candidates.iter().map(|c| uaf::UafCandidate {
                obj: c.obj,
                use_event: to_global(&offsets, c.use_event),
                free_event: to_global(&offsets, c.free_event),
                constraints: c.constraints,
            }));
        }
        prop_assert_eq!(&windowed.candidates, &expected);
        prop_assert_eq!(windowed.pruned, pruned);
        prop_assert_eq!(windowed.total_constraints, constraints);
    }

    /// Windowed TSO checking drops cross-window observations instead of
    /// misreading them: histories produced by a real TSO machine stay
    /// consistent under every window size.
    #[test]
    fn windowed_tso_accepts_machine_histories(
        seed in 0u64..500,
        window in 15usize..200,
    ) {
        let trace = gen::tso_history(&gen::TsoCfg {
            threads: 4,
            events_per_thread: 80,
            vars: 3,
            seed,
            ..Default::default()
        });
        let r = tso::check::<Csst>(&trace, &tso::TsoCheckCfg {
            window: Some(window),
            ..Default::default()
        });
        prop_assert!(r.consistent, "windowed checker rejected a TSO machine history");
        prop_assert!(r.window.peak_buffered <= window);
    }
}
