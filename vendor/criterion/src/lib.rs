//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the API subset the workspace's `benches/*.rs` files use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros.
//!
//! Measurement is intentionally simple — each benchmark runs a short
//! calibrated loop and reports the mean wall-clock time per iteration
//! to stdout. There is no statistical analysis, HTML report, or
//! history; the numbers are indicative, and the shim's main job is to
//! keep `cargo bench` compiling and runnable offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as the real crate provides.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A benchmark id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark id that is only a parameter, grouped under the
    /// enclosing group's name.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self { name }
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher<'a> {
    elapsed: Duration,
    iters: u64,
    _lifetime: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    fn new() -> Bencher<'static> {
        Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            _lifetime: std::marker::PhantomData,
        }
    }

    /// Times `routine`, running it enough times to get a stable-ish
    /// mean without taking long: one warmup call, then a batch sized so
    /// the measured window is at least ~5ms (capped at 1000 calls).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(5);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters);
        println!(
            "{name:<48} time: {per_iter:>12} ns/iter ({} iters)",
            self.iters
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes its own batches.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim sizes its own batches.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name));
        self
    }

    /// Ends the group. (No-op beyond matching the real API.)
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for compatibility; the shim has no CLI options beyond
    /// ignoring the ones cargo bench passes.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.name);
        self
    }
}

/// Declares a function running a list of benchmark target functions,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
