//! The [`Arbitrary`] trait and [`any`], for `any::<T>()` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::fmt::Debug;
use core::marker::PhantomData;
use rand::{Rng, StandardSample};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        bool::standard_sample(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, i8, i16, i32);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u64::standard_sample(rng)
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        usize::standard_sample(rng)
    }
}

/// The strategy for any value of `A`, mirroring `proptest::arbitrary::any`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}
