//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::fmt::Debug;
use rand::Rng;

/// The number of elements a collection strategy may generate.
#[derive(Debug, Clone)]
pub struct SizeRange {
    start: usize,
    /// Inclusive upper bound.
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { start: n, end: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            start: r.start,
            end: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self {
            start: *r.start(),
            end: *r.end(),
        }
    }
}

/// A strategy producing `Vec`s of values drawn from an element
/// strategy, with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.start..=self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
