//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the subset of proptest used by the workspace's property
//! tests: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with `prop_map`/`boxed`,
//! range/tuple/[`Just`](strategy::Just) strategies, weighted
//! [`prop_oneof!`], [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! Semantics versus the real crate:
//!
//! * **No shrinking.** A failing case reports its generated inputs and
//!   the deterministic seed, but is not minimized.
//! * **Deterministic seeding.** Each `proptest!` test derives its seed
//!   from its module path and name (FNV-1a), so failures reproduce
//!   exactly across runs. The only `PROPTEST_*` env handling is
//!   `PROPTEST_CASES`, which *caps* the per-test case count (a quick
//!   CI profile); it never raises it, so seeds and the cases that do
//!   run are unchanged.
//! * Strategies are generate-only: `Strategy::generate` draws a value
//!   from a [`test_runner::TestRng`].
//!
//! Paths mirror the real crate (`proptest::prelude::*`,
//! `prop::collection::vec`, `ProptestConfig::with_cases`) so swapping
//! the real dependency back is a one-line manifest change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with the generated inputs in the message) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Builds a strategy choosing among several alternatives, optionally
/// weighted (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let seed = $crate::test_runner::fnv1a(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}; ")),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{} (seed {:#x}):\n{}\ninputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        seed,
                        err,
                        inputs
                    );
                }
            }
        }
    )*};
}
