//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A strategy producing `Some` values from `inner` three times out of
/// four, and `None` otherwise (the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The strategy returned by [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen_range(0u32..4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
