//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use core::fmt::Debug;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest, strategies here are generate-only: there
/// is no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates values and discards those `f` rejects (up to a retry
    /// bound, then panics), mirroring `Strategy::prop_filter`.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

impl<V> Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        );
    }
}

/// A weighted choice among boxed alternatives, built by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union from `(weight, strategy)` arms. Panics if all
    /// weights are zero or no arms are given.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            total > 0,
            "prop_oneof! requires at least one positive weight"
        );
        Self { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.gen_range(0..self.total);
        for (weight, strat) in &self.arms {
            if roll < *weight {
                return strat.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("weighted pick out of range")
    }
}

impl<V> Debug for Union<V> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A / a);
impl_strategy_for_tuple!(A / a, B / b);
impl_strategy_for_tuple!(A / a, B / b, C / c);
impl_strategy_for_tuple!(A / a, B / b, C / c, D / d);
impl_strategy_for_tuple!(A / a, B / b, C / c, D / d, E / e);
impl_strategy_for_tuple!(A / a, B / b, C / c, D / d, E / e, F / f);
impl_strategy_for_tuple!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
impl_strategy_for_tuple!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
