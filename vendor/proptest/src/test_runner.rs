//! Test-runner plumbing: configuration, the deterministic RNG handed to
//! strategies, and the error type `prop_assert*` produce.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The deterministic RNG strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds an RNG whose stream is fully determined by `seed`.
    pub fn deterministic(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed `prop_assert*` inside a property-test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a over a string: the stable per-test seed derivation.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}
