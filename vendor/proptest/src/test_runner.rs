//! Test-runner plumbing: configuration, the deterministic RNG handed to
//! strategies, and the error type `prop_assert*` produce.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases each test runs.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs per test, capped by
    /// the `PROPTEST_CASES` environment variable when set (a quick-CI
    /// profile: `PROPTEST_CASES=8` runs every test with at most 8
    /// cases, never more than the test asked for).
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: apply_env_cap(cases, std::env::var("PROPTEST_CASES").ok().as_deref()),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self::with_cases(256)
    }
}

/// Caps `cases` by the parsed `PROPTEST_CASES` value, ignoring unset,
/// empty, or unparsable values (kept pure for unit testing).
fn apply_env_cap(cases: u32, env: Option<&str>) -> u32 {
    match env.and_then(|v| v.trim().parse::<u32>().ok()) {
        Some(cap) => cases.min(cap.max(1)),
        None => cases,
    }
}

/// The deterministic RNG strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Builds an RNG whose stream is fully determined by `seed`.
    pub fn deterministic(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed `prop_assert*` inside a property-test body.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a over a string: the stable per-test seed derivation.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::apply_env_cap;

    #[test]
    fn env_cap_semantics() {
        assert_eq!(apply_env_cap(256, None), 256, "unset: untouched");
        assert_eq!(apply_env_cap(256, Some("8")), 8, "cap applies");
        assert_eq!(apply_env_cap(4, Some("8")), 4, "never raises");
        assert_eq!(apply_env_cap(256, Some(" 16 ")), 16, "whitespace ok");
        assert_eq!(apply_env_cap(256, Some("")), 256, "empty: untouched");
        assert_eq!(apply_env_cap(256, Some("lots")), 256, "junk: untouched");
        assert_eq!(apply_env_cap(256, Some("0")), 1, "floor of one case");
    }
}
