//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access to a
//! crates registry, so this vendored shim implements exactly the API
//! subset the workspace uses — [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::gen`], and [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`] — with `rand 0.8`-compatible paths so
//! that swapping the real crate back in is a one-line `Cargo.toml`
//! change.
//!
//! The generator behind [`rngs::SmallRng`] is xoshiro256++, the same
//! family the real `small_rng` feature uses on 64-bit targets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;

/// The core of a random number generator: a source of `u64`s.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds yield
    /// identical streams on every platform.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from a half-open or inclusive range by
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample empty range {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range {start}..={end}");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Draws a `f64` uniformly from `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that [`Rng::gen`] can produce from the standard distribution.
pub trait StandardSample {
    /// Samples one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool requires 0 <= p <= 1, got {p}"
        );
        unit_f64(self) < p
    }

    /// Samples a value from the standard distribution (uniform over the
    /// type's range; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

impl<R: RngCore> Rng for R {}
