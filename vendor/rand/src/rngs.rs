//! Concrete generators. Only [`SmallRng`] is provided: a small, fast,
//! non-cryptographic PRNG (xoshiro256++) matching the role of
//! `rand::rngs::SmallRng`.

use crate::{RngCore, SeedableRng};

/// A small-state, fast, non-cryptographic PRNG (xoshiro256++).
///
/// Deterministic for a given seed across platforms, which is what the
/// workspace's seeded workload generators and tests rely on.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain).
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed with splitmix64, as the real crate does.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s = [0xDEAD_BEEF, 0xCAFE_F00D, 0xBAD_5EED, 0x1234_5678];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..=4);
            assert!(w <= 4);
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let r: f64 = rng.gen();
            assert!((0.0..1.0).contains(&r));
        }
    }
}
